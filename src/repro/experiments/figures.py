"""One experiment function per figure of the paper (plus the ablation studies).

Every function returns a :class:`~repro.experiments.config.SweepResult` whose
series carry the same algorithms the corresponding figure plots.  The default
:class:`~repro.experiments.config.ExperimentSettings` run the experiments at a
reduced data volume (``scale``) and with fewer repetitions than the paper so
that the full benchmark suite completes on a laptop; pass
``ExperimentSettings(scale=1.0, n_runs=10)`` to reproduce the paper-scale
configuration exactly.

The x-value grids default to a coarser version of the paper's grids for the
same reason; every function accepts an explicit grid.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence

import numpy as np

from ..core.dynamic_compressed import DCHistogram
from ..core.dynamic_vopt import DADOHistogram
from ..core.factory import build_dynamic_histogram, build_static_histogram
from ..core.memory import MemoryModel
from ..datagen.clusters import ClusterDistributionConfig, generate_cluster_values
from ..datagen.mailorder import MailOrderConfig, generate_mail_order_values
from ..datagen.reference import reference_config, static_comparison_config
from ..distributed.coordinator import GlobalHistogramCoordinator, GlobalStrategy
from ..distributed.site import SiteGenerationConfig, generate_sites
from ..metrics.distribution import DataDistribution
from ..metrics.ks import ks_statistic
from ..static.compressed import CompressedHistogram
from ..workloads.streams import (
    UpdateStream,
    random_insertions,
    sorted_insertions,
)
from .config import ExperimentSettings, SweepResult
from .runner import replay

__all__ = [
    "fig05_center_skew",
    "fig06_size_skew",
    "fig07_cluster_sd",
    "fig08_memory",
    "fig09_static_center_skew",
    "fig10_static_size_skew",
    "fig11_static_cluster_sd",
    "fig12_static_memory",
    "fig13_construction_time",
    "fig14_ac_disk_space",
    "fig15_sorted_insertions",
    "fig16_precision_vs_inserted_fraction",
    "fig17_random_deletions",
    "fig18_deletions_after_sorted_inserts",
    "fig19_mail_order",
    "fig20_distributed_memory",
    "fig21_distributed_intrasite_skew",
    "fig22_distributed_site_count",
    "fig23_distributed_site_size_skew",
    "ablation_sub_buckets",
    "ablation_alpha_min",
    "ablation_repartition_threshold",
]

_MEMORY_MODEL = MemoryModel()

#: Memory used by the static-comparison experiments (Figures 9-12).
STATIC_COMPARISON_MEMORY_KB = 0.14


# ----------------------------------------------------------------------
# shared machinery
# ----------------------------------------------------------------------
def _run_dynamic(
    kind: str,
    stream: UpdateStream,
    memory_kb: float,
    *,
    value_unit: float = 1.0,
    disk_factor: float = 20.0,
    seed: int = 0,
) -> float:
    """Replay a stream into a freshly built dynamic histogram; return the KS."""
    histogram = build_dynamic_histogram(
        kind, memory_kb, value_unit=value_unit, disk_factor=disk_factor, seed=seed
    )
    truth = DataDistribution()
    replay(histogram, stream, truth=truth)
    return ks_statistic(truth, histogram, value_unit=value_unit)


def _dynamic_parameter_sweep(
    name: str,
    x_label: str,
    x_values: Sequence[float],
    config_for_x: Callable[[float, int], ClusterDistributionConfig],
    settings: ExperimentSettings,
    *,
    algorithms: Sequence[str] = ("DC", "DADO", "AC", "DVO"),
    memory_for_x: Callable[[float], float] | None = None,
    sorted_streams: bool = False,
    disk_factor: float = 20.0,
    metadata: dict[str, object] | None = None,
) -> SweepResult:
    """Generic dynamic-histogram sweep used by Figures 5-8, 14, 15 and 19."""
    series: dict[str, list[float]] = {algorithm: [] for algorithm in algorithms}
    for x in x_values:
        totals = {algorithm: 0.0 for algorithm in algorithms}
        for seed in settings.seeds:
            config = config_for_x(x, seed)
            values = generate_cluster_values(config)
            stream = (
                sorted_insertions(values)
                if sorted_streams
                else random_insertions(values, seed=seed)
            )
            memory_kb = memory_for_x(x) if memory_for_x is not None else settings.memory_kb
            for algorithm in algorithms:
                # The AC backing sample is a fixed multiple of memory in the
                # paper; shrink it with the data scale so the sample-to-data
                # ratio stays in the paper's regime.
                effective_disk = _disk_factor_for(algorithm, disk_factor) * settings.scale
                totals[algorithm] += _run_dynamic(
                    algorithm.lower().rstrip("x0123456789"),
                    stream,
                    memory_kb,
                    disk_factor=max(effective_disk, 0.25),
                    seed=seed,
                )
        for algorithm in algorithms:
            series[algorithm].append(totals[algorithm] / settings.n_runs)
    return SweepResult(
        name=name,
        x_label=x_label,
        x_values=list(x_values),
        series=series,
        metadata={"scale": settings.scale, "runs": settings.n_runs, **(metadata or {})},
    )


def _disk_factor_for(algorithm: str, default: float) -> float:
    """Parse AC disk factors out of series names such as ``AC40X``."""
    upper = algorithm.upper()
    if upper.startswith("AC") and upper.endswith("X") and upper[2:-1].isdigit():
        return float(upper[2:-1])
    return default


# ----------------------------------------------------------------------
# Figures 5-8: dynamic histograms under random insertions
# ----------------------------------------------------------------------
def fig05_center_skew(
    settings: ExperimentSettings = ExperimentSettings(),
    x_values: Sequence[float] = (0.0, 1.0, 2.0, 3.0),
) -> SweepResult:
    """Figure 5: KS statistic as a function of the centre-skew ``S``."""
    return _dynamic_parameter_sweep(
        "fig05",
        "S (skew of cluster centres)",
        x_values,
        lambda s, seed: reference_config(center_skew=s, seed=seed, scale=settings.scale),
        settings,
        metadata={"Z": 1, "SD": 2, "memory_kb": settings.memory_kb},
    )


def fig06_size_skew(
    settings: ExperimentSettings = ExperimentSettings(),
    x_values: Sequence[float] = (0.0, 1.0, 2.0, 3.0),
) -> SweepResult:
    """Figure 6: KS statistic as a function of the cluster-size skew ``Z``."""
    return _dynamic_parameter_sweep(
        "fig06",
        "Z (cluster size skew)",
        x_values,
        lambda z, seed: reference_config(size_skew=z, seed=seed, scale=settings.scale),
        settings,
        metadata={"S": 1, "SD": 2, "memory_kb": settings.memory_kb},
    )


def fig07_cluster_sd(
    settings: ExperimentSettings = ExperimentSettings(),
    x_values: Sequence[float] = (0.0, 2.0, 5.0, 10.0, 20.0),
) -> SweepResult:
    """Figure 7: KS statistic as a function of the intra-cluster deviation ``SD``."""
    return _dynamic_parameter_sweep(
        "fig07",
        "SD (standard deviation within clusters)",
        x_values,
        lambda sd, seed: reference_config(cluster_sd=sd, seed=seed, scale=settings.scale),
        settings,
        metadata={"S": 1, "Z": 1, "memory_kb": settings.memory_kb},
    )


def fig08_memory(
    settings: ExperimentSettings = ExperimentSettings(),
    x_values: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
) -> SweepResult:
    """Figure 8: KS statistic as a function of the available memory."""
    return _dynamic_parameter_sweep(
        "fig08",
        "Memory [KB]",
        x_values,
        lambda _memory, seed: reference_config(seed=seed, scale=settings.scale),
        settings,
        memory_for_x=lambda memory: memory,
        metadata={"S": 1, "Z": 1, "SD": 2},
    )


# ----------------------------------------------------------------------
# Figures 9-12: comparison with static histograms
# ----------------------------------------------------------------------
_STATIC_ALGORITHMS = ("SADO", "SVO", "SC", "DADO", "SSBM")


def _static_comparison_sweep(
    name: str,
    x_label: str,
    x_values: Sequence[float],
    config_for_x: Callable[[float, int], ClusterDistributionConfig],
    settings: ExperimentSettings,
    *,
    memory_for_x: Callable[[float], float] | None = None,
    metadata: dict[str, object] | None = None,
) -> SweepResult:
    """Generic sweep comparing DADO against the best static histograms."""
    series: dict[str, list[float]] = {algorithm: [] for algorithm in _STATIC_ALGORITHMS}
    for x in x_values:
        totals = {algorithm: 0.0 for algorithm in _STATIC_ALGORITHMS}
        for seed in settings.seeds:
            config = config_for_x(x, seed)
            values = generate_cluster_values(config)
            truth = DataDistribution(values)
            memory_kb = (
                memory_for_x(x) if memory_for_x is not None else STATIC_COMPARISON_MEMORY_KB
            )

            for kind, algorithm in (("sado", "SADO"), ("svo", "SVO"), ("sc", "SC"), ("ssbm", "SSBM")):
                static_histogram = build_static_histogram(kind, truth, memory_kb)
                totals[algorithm] += ks_statistic(truth, static_histogram, value_unit=1.0)

            stream = random_insertions(values, seed=seed)
            totals["DADO"] += _run_dynamic("dado", stream, memory_kb, seed=seed)
        for algorithm in _STATIC_ALGORITHMS:
            series[algorithm].append(totals[algorithm] / settings.n_runs)
    return SweepResult(
        name=name,
        x_label=x_label,
        x_values=list(x_values),
        series=series,
        metadata={"scale": settings.scale, "runs": settings.n_runs, **(metadata or {})},
    )


def fig09_static_center_skew(
    settings: ExperimentSettings = ExperimentSettings(),
    x_values: Sequence[float] = (0.0, 1.0, 2.0, 3.0),
) -> SweepResult:
    """Figure 9: static comparison, KS as a function of the centre skew ``S``."""
    return _static_comparison_sweep(
        "fig09",
        "S (skew of cluster centres)",
        x_values,
        lambda s, seed: static_comparison_config(center_skew=s, seed=seed, scale=settings.scale),
        settings,
        metadata={"Z": 1, "SD": 1, "C": 50, "memory_kb": STATIC_COMPARISON_MEMORY_KB},
    )


def fig10_static_size_skew(
    settings: ExperimentSettings = ExperimentSettings(),
    x_values: Sequence[float] = (0.0, 1.0, 2.0, 3.0),
) -> SweepResult:
    """Figure 10: static comparison, KS as a function of the size skew ``Z``."""
    return _static_comparison_sweep(
        "fig10",
        "Z (cluster size skew)",
        x_values,
        lambda z, seed: static_comparison_config(size_skew=z, seed=seed, scale=settings.scale),
        settings,
        metadata={"S": 1, "SD": 1, "C": 50, "memory_kb": STATIC_COMPARISON_MEMORY_KB},
    )


def fig11_static_cluster_sd(
    settings: ExperimentSettings = ExperimentSettings(),
    x_values: Sequence[float] = (0.0, 1.0, 2.0, 5.0),
) -> SweepResult:
    """Figure 11: static comparison, KS as a function of the cluster width ``SD``."""
    return _static_comparison_sweep(
        "fig11",
        "SD (standard deviation within clusters)",
        x_values,
        lambda sd, seed: static_comparison_config(cluster_sd=sd, seed=seed, scale=settings.scale),
        settings,
        metadata={"S": 1, "Z": 1, "C": 50, "memory_kb": STATIC_COMPARISON_MEMORY_KB},
    )


def fig12_static_memory(
    settings: ExperimentSettings = ExperimentSettings(),
    x_values: Sequence[float] = (0.11, 0.13, 0.15, 0.17),
) -> SweepResult:
    """Figure 12: static comparison, KS as a function of the available memory."""
    return _static_comparison_sweep(
        "fig12",
        "Memory [KB]",
        x_values,
        lambda _memory, seed: static_comparison_config(seed=seed, scale=settings.scale),
        settings,
        memory_for_x=lambda memory: memory,
        metadata={"S": 1, "Z": 1, "SD": 1, "C": 50},
    )


# ----------------------------------------------------------------------
# Figure 13: construction / maintenance times
# ----------------------------------------------------------------------
def fig13_construction_time(
    settings: ExperimentSettings = ExperimentSettings(),
    x_values: Sequence[float] = (0.1, 0.2, 0.3, 0.5),
) -> SweepResult:
    """Figure 13: execution time of SVO, SSBM, SC and DADO as memory grows.

    Absolute times reflect this pure-Python implementation, not the paper's
    1999 testbed; the series ordering (SVO slowest by far, DADO cheapest) and
    the growth trends are the reproducible part.
    """
    algorithms = ("SVO", "SSBM", "SC", "DADO")
    series: dict[str, list[float]] = {algorithm: [] for algorithm in algorithms}
    config = ClusterDistributionConfig(
        n_points=max(1, int(round(100_000 * settings.scale))),
        n_clusters=200,
        center_skew=1.0,
        size_skew=1.0,
        cluster_sd=1.0,
        seed=settings.base_seed,
    )
    values = generate_cluster_values(config)
    truth = DataDistribution(values)
    stream = random_insertions(values, seed=settings.base_seed)

    for memory_kb in x_values:
        for kind, algorithm in (("svo", "SVO"), ("ssbm", "SSBM"), ("sc", "SC")):
            start = time.perf_counter()
            build_static_histogram(kind, truth, memory_kb)
            series[algorithm].append(time.perf_counter() - start)
        start = time.perf_counter()
        histogram = build_dynamic_histogram("dado", memory_kb)
        histogram.apply(stream)
        series["DADO"].append(time.perf_counter() - start)

    return SweepResult(
        name="fig13",
        x_label="Memory [KB]",
        x_values=list(x_values),
        series=series,
        y_label="execution time [s]",
        metadata={"scale": settings.scale, "C": 200},
    )


# ----------------------------------------------------------------------
# Figure 14: sensitivity of AC to its disk budget
# ----------------------------------------------------------------------
def fig14_ac_disk_space(
    settings: ExperimentSettings = ExperimentSettings(),
    x_values: Sequence[float] = (0.0, 1.0, 2.0, 3.0),
) -> SweepResult:
    """Figure 14: AC with 20x/40x/60x disk space vs SC and DADO, sweeping ``S``."""
    dynamic = _dynamic_parameter_sweep(
        "fig14",
        "S (skew of cluster centres)",
        x_values,
        lambda s, seed: reference_config(
            center_skew=s, n_clusters=1000, seed=seed, scale=settings.scale
        ),
        settings,
        algorithms=("AC20X", "AC40X", "AC60X", "DADO"),
        metadata={"Z": 1, "SD": 2, "C": 1000, "memory_kb": settings.memory_kb},
    )
    # Add the static Compressed reference series.
    sc_series: list[float] = []
    for x in x_values:
        total = 0.0
        for seed in settings.seeds:
            config = reference_config(
                center_skew=x, n_clusters=1000, seed=seed, scale=settings.scale
            )
            truth = DataDistribution(generate_cluster_values(config))
            histogram = build_static_histogram("sc", truth, settings.memory_kb)
            total += ks_statistic(truth, histogram, value_unit=1.0)
        sc_series.append(total / settings.n_runs)
    dynamic.series["SC"] = sc_series
    return dynamic


# ----------------------------------------------------------------------
# Figure 15: sorted insertions
# ----------------------------------------------------------------------
def fig15_sorted_insertions(
    settings: ExperimentSettings = ExperimentSettings(),
    x_values: Sequence[float] = (0.0, 1.0, 2.0, 3.0),
) -> SweepResult:
    """Figure 15: KS under sorted insertions as a function of the size skew ``Z``."""
    return _dynamic_parameter_sweep(
        "fig15",
        "Z (cluster size skew)",
        x_values,
        lambda z, seed: reference_config(size_skew=z, seed=seed, scale=settings.scale),
        settings,
        algorithms=("DADO", "AC20X", "DC", "DVO"),
        sorted_streams=True,
        metadata={"S": 1, "SD": 2, "memory_kb": settings.memory_kb, "order": "sorted"},
    )


# ----------------------------------------------------------------------
# Figure 16: precision degradation while data is loaded
# ----------------------------------------------------------------------
def fig16_precision_vs_inserted_fraction(
    settings: ExperimentSettings = ExperimentSettings(),
    fractions: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 1.0),
) -> SweepResult:
    """Figure 16: KS as a function of the fraction of (sorted) data inserted."""
    algorithms = ("DADO", "AC", "SC")
    series: dict[str, list[float]] = {algorithm: [0.0] * len(fractions) for algorithm in algorithms}

    for seed in settings.seeds:
        config = reference_config(seed=seed, scale=settings.scale)
        values = np.sort(generate_cluster_values(config))
        total = len(values)

        dado = build_dynamic_histogram("dado", settings.memory_kb)
        ac = build_dynamic_histogram(
            "ac", settings.memory_kb, disk_factor=max(20.0 * settings.scale, 0.25), seed=seed
        )
        truth = DataDistribution()

        position = 0
        for index, fraction in enumerate(fractions):
            target = int(round(fraction * total))
            while position < target:
                value = float(values[position])
                dado.insert(value)
                ac.insert(value)
                truth.add(value)
                position += 1
            series["DADO"][index] += ks_statistic(truth, dado, value_unit=1.0)
            series["AC"][index] += ks_statistic(truth, ac, value_unit=1.0)
            sc_buckets = _MEMORY_MODEL.buckets_for_kb("sc", settings.memory_kb)
            static_compressed = CompressedHistogram.build(truth, sc_buckets)
            series["SC"][index] += ks_statistic(truth, static_compressed, value_unit=1.0)

    for algorithm in algorithms:
        series[algorithm] = [value / settings.n_runs for value in series[algorithm]]
    return SweepResult(
        name="fig16",
        x_label="fraction of data inserted",
        x_values=list(fractions),
        series=series,
        metadata={"scale": settings.scale, "runs": settings.n_runs, "order": "sorted"},
    )


# ----------------------------------------------------------------------
# Figures 17 and 18: deletions
# ----------------------------------------------------------------------
def _deletion_sweep(
    name: str,
    settings: ExperimentSettings,
    fractions: Sequence[float],
    *,
    sorted_inserts: bool,
) -> SweepResult:
    """KS as a function of the fraction of data deleted after loading."""
    algorithms = ("DADO", "AC")
    series: dict[str, list[float]] = {algorithm: [0.0] * len(fractions) for algorithm in algorithms}

    for seed in settings.seeds:
        config = reference_config(n_clusters=1000, seed=seed, scale=settings.scale)
        values = generate_cluster_values(config)
        rng = np.random.default_rng(seed)
        insert_order = np.sort(values) if sorted_inserts else rng.permutation(values)
        max_fraction = max(fractions)
        victims = rng.permutation(insert_order)[: int(round(max_fraction * len(insert_order)))]

        dado = build_dynamic_histogram("dado", settings.memory_kb)
        ac = build_dynamic_histogram(
            "ac", settings.memory_kb, disk_factor=max(20.0 * settings.scale, 0.25), seed=seed
        )
        truth = DataDistribution()
        for value in insert_order:
            dado.insert(float(value))
            ac.insert(float(value))
            truth.add(float(value))

        deleted = 0
        for index, fraction in enumerate(fractions):
            target = int(round(fraction * len(insert_order)))
            while deleted < target and deleted < len(victims):
                value = float(victims[deleted])
                dado.delete(value)
                ac.delete(value)
                truth.remove(value)
                deleted += 1
            series["DADO"][index] += ks_statistic(truth, dado, value_unit=1.0)
            series["AC"][index] += ks_statistic(truth, ac, value_unit=1.0)

    for algorithm in algorithms:
        series[algorithm] = [value / settings.n_runs for value in series[algorithm]]
    return SweepResult(
        name=name,
        x_label="fraction of data deleted",
        x_values=list(fractions),
        series=series,
        metadata={
            "scale": settings.scale,
            "runs": settings.n_runs,
            "C": 1000,
            "insert_order": "sorted" if sorted_inserts else "random",
        },
    )


def fig17_random_deletions(
    settings: ExperimentSettings = ExperimentSettings(),
    fractions: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8),
) -> SweepResult:
    """Figure 17: KS vs volume of random deletes (after random inserts)."""
    return _deletion_sweep("fig17", settings, fractions, sorted_inserts=False)


def fig18_deletions_after_sorted_inserts(
    settings: ExperimentSettings = ExperimentSettings(),
    fractions: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8),
) -> SweepResult:
    """Figure 18: KS vs volume of random deletes after sorted inserts."""
    return _deletion_sweep("fig18", settings, fractions, sorted_inserts=True)


# ----------------------------------------------------------------------
# Figure 19: the mail-order trace
# ----------------------------------------------------------------------
def fig19_mail_order(
    settings: ExperimentSettings = ExperimentSettings(),
    x_values: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
) -> SweepResult:
    """Figure 19: KS on the (synthetic) mail-order trace as memory grows."""
    algorithms = ("AC", "DC", "DADO")
    series: dict[str, list[float]] = {algorithm: [] for algorithm in algorithms}

    for memory_kb in x_values:
        totals = {algorithm: 0.0 for algorithm in algorithms}
        for seed in settings.seeds:
            config = MailOrderConfig(
                n_records=max(100, int(round(61_105 * settings.scale))), seed=seed
            )
            values = generate_mail_order_values(config)
            stream = random_insertions(values, seed=seed)
            truth = DataDistribution(stream.live_values())
            for algorithm in algorithms:
                histogram = build_dynamic_histogram(
                    algorithm.lower(),
                    memory_kb,
                    value_unit=0.01,
                    disk_factor=max(20.0 * settings.scale, 0.25),
                    seed=seed,
                )
                histogram.apply(stream)
                totals[algorithm] += ks_statistic(truth, histogram, value_unit=0.01)
        for algorithm in algorithms:
            series[algorithm].append(totals[algorithm] / settings.n_runs)

    return SweepResult(
        name="fig19",
        x_label="Memory [KB]",
        x_values=list(x_values),
        series=series,
        metadata={"scale": settings.scale, "runs": settings.n_runs, "trace": "mail-order"},
    )


# ----------------------------------------------------------------------
# Figures 20-23: global histograms in a shared-nothing environment
# ----------------------------------------------------------------------
_DISTRIBUTED_SERIES = {
    GlobalStrategy.HISTOGRAM_THEN_UNION: "histogram + union",
    GlobalStrategy.UNION_THEN_HISTOGRAM: "union + histogram",
}

#: Default per-histogram memory of the shared-nothing experiments (250 bytes).
DISTRIBUTED_MEMORY_KB = 250.0 / 1024.0


def _distributed_sweep(
    name: str,
    x_label: str,
    x_values: Sequence[float],
    site_config_for_x: Callable[[float, int], SiteGenerationConfig],
    settings: ExperimentSettings,
    *,
    memory_for_x: Callable[[float], float] | None = None,
    metadata: dict[str, object] | None = None,
) -> SweepResult:
    series: dict[str, list[float]] = {label: [] for label in _DISTRIBUTED_SERIES.values()}
    for x in x_values:
        totals = {label: 0.0 for label in _DISTRIBUTED_SERIES.values()}
        for seed in settings.seeds:
            sites = generate_sites(site_config_for_x(x, seed))
            memory_kb = memory_for_x(x) if memory_for_x is not None else DISTRIBUTED_MEMORY_KB
            coordinator = GlobalHistogramCoordinator(sites, memory_kb)
            measured = coordinator.evaluate()
            for strategy, label in _DISTRIBUTED_SERIES.items():
                totals[label] += measured[strategy.value]
        for label in _DISTRIBUTED_SERIES.values():
            series[label].append(totals[label] / settings.n_runs)
    return SweepResult(
        name=name,
        x_label=x_label,
        x_values=list(x_values),
        series=series,
        metadata={"scale": settings.scale, "runs": settings.n_runs, **(metadata or {})},
    )


def _base_site_config(settings: ExperimentSettings, seed: int, **overrides) -> SiteGenerationConfig:
    defaults = dict(
        n_sites=5,
        total_points=max(500, int(round(50_000 * settings.scale))),
        intrasite_skew=1.0,
        site_size_skew=0.0,
        seed=seed,
    )
    defaults.update(overrides)
    return SiteGenerationConfig(**defaults)


def fig20_distributed_memory(
    settings: ExperimentSettings = ExperimentSettings(),
    x_values: Sequence[float] = (0.1, 0.25, 0.5, 1.0),
) -> SweepResult:
    """Figure 20: global histogram error as a function of histogram memory."""
    return _distributed_sweep(
        "fig20",
        "Histogram memory [KB]",
        x_values,
        lambda _x, seed: _base_site_config(settings, seed),
        settings,
        memory_for_x=lambda memory: memory,
        metadata={"n_sites": 5, "Z_Freq": 1, "Z_Site": 0},
    )


def fig21_distributed_intrasite_skew(
    settings: ExperimentSettings = ExperimentSettings(),
    x_values: Sequence[float] = (0.0, 1.0, 2.0, 3.0),
) -> SweepResult:
    """Figure 21: global histogram error as a function of the intra-site skew."""
    return _distributed_sweep(
        "fig21",
        "Z_Freq (skew within members)",
        x_values,
        lambda z, seed: _base_site_config(settings, seed, intrasite_skew=z),
        settings,
        metadata={"n_sites": 5, "Z_Site": 0, "memory_kb": DISTRIBUTED_MEMORY_KB},
    )


def fig22_distributed_site_count(
    settings: ExperimentSettings = ExperimentSettings(),
    x_values: Sequence[float] = (1, 2, 5, 10, 20),
) -> SweepResult:
    """Figure 22: global histogram error as a function of the number of sites."""
    return _distributed_sweep(
        "fig22",
        "Number of sites",
        x_values,
        lambda n, seed: _base_site_config(settings, seed, n_sites=int(n)),
        settings,
        metadata={"Z_Freq": 1, "Z_Site": 0, "memory_kb": DISTRIBUTED_MEMORY_KB},
    )


def fig23_distributed_site_size_skew(
    settings: ExperimentSettings = ExperimentSettings(),
    x_values: Sequence[float] = (0.0, 1.0, 2.0, 3.0),
) -> SweepResult:
    """Figure 23: global histogram error as a function of the site-size skew."""
    return _distributed_sweep(
        "fig23",
        "Z_Site (skew in member sizes)",
        x_values,
        lambda z, seed: _base_site_config(settings, seed, site_size_skew=z),
        settings,
        metadata={"n_sites": 5, "Z_Freq": 1, "memory_kb": DISTRIBUTED_MEMORY_KB},
    )


# ----------------------------------------------------------------------
# Ablations (design-choice benchmarks beyond the paper's figures)
# ----------------------------------------------------------------------
def ablation_sub_buckets(
    settings: ExperimentSettings = ExperimentSettings(),
    x_values: Sequence[float] = (2, 3, 4, 6),
) -> SweepResult:
    """KS of DADO as the number of sub-buckets per bucket varies (Section 4 claim)."""
    series: dict[str, list[float]] = {"DADO": []}
    for sub_buckets in x_values:
        total = 0.0
        for seed in settings.seeds:
            config = reference_config(seed=seed, scale=settings.scale)
            values = generate_cluster_values(config)
            stream = random_insertions(values, seed=seed)
            n_buckets = _MEMORY_MODEL.buckets_for_kb("dado", settings.memory_kb)
            histogram = DADOHistogram(n_buckets, sub_buckets=int(sub_buckets))
            truth = DataDistribution()
            replay(histogram, stream, truth=truth)
            total += ks_statistic(truth, histogram, value_unit=1.0)
        series["DADO"].append(total / settings.n_runs)
    return SweepResult(
        name="ablation_sub_buckets",
        x_label="sub-buckets per bucket",
        x_values=list(x_values),
        series=series,
        metadata={"scale": settings.scale, "runs": settings.n_runs},
    )


def ablation_alpha_min(
    settings: ExperimentSettings = ExperimentSettings(),
    x_values: Sequence[float] = (1e-2, 1e-4, 1e-6, 1e-8),
) -> SweepResult:
    """KS of DC as the Chi-square significance threshold alpha_min varies."""
    series: dict[str, list[float]] = {"DC": []}
    repartitions: list[float] = []
    for alpha_min in x_values:
        total = 0.0
        total_repartitions = 0.0
        for seed in settings.seeds:
            config = reference_config(seed=seed, scale=settings.scale)
            values = generate_cluster_values(config)
            stream = random_insertions(values, seed=seed)
            n_buckets = _MEMORY_MODEL.buckets_for_kb("dc", settings.memory_kb)
            histogram = DCHistogram(n_buckets, alpha_min=alpha_min)
            truth = DataDistribution()
            replay(histogram, stream, truth=truth)
            total += ks_statistic(truth, histogram, value_unit=1.0)
            total_repartitions += histogram.repartition_count
        series["DC"].append(total / settings.n_runs)
        repartitions.append(total_repartitions / settings.n_runs)
    return SweepResult(
        name="ablation_alpha_min",
        x_label="alpha_min",
        x_values=list(x_values),
        series=series,
        metadata={
            "scale": settings.scale,
            "runs": settings.n_runs,
            "mean_repartitions": repartitions,
        },
    )


def ablation_repartition_threshold(
    settings: ExperimentSettings = ExperimentSettings(),
    x_values: Sequence[float] = (0.0, -1.0, -5.0, -20.0),
) -> SweepResult:
    """KS of DADO as the split-merge trigger bound on min delta phi varies."""
    series: dict[str, list[float]] = {"DADO": []}
    for threshold in x_values:
        total = 0.0
        for seed in settings.seeds:
            config = reference_config(seed=seed, scale=settings.scale)
            values = generate_cluster_values(config)
            stream = random_insertions(values, seed=seed)
            n_buckets = _MEMORY_MODEL.buckets_for_kb("dado", settings.memory_kb)
            histogram = DADOHistogram(n_buckets, repartition_threshold=float(threshold))
            truth = DataDistribution()
            replay(histogram, stream, truth=truth)
            total += ks_statistic(truth, histogram, value_unit=1.0)
        series["DADO"].append(total / settings.n_runs)
    return SweepResult(
        name="ablation_repartition_threshold",
        x_label="repartition threshold (upper bound on min delta phi)",
        x_values=list(x_values),
        series=series,
        metadata={"scale": settings.scale, "runs": settings.n_runs},
    )
