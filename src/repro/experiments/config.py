"""Experiment configuration and result containers."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .._validation import require_positive_float, require_positive_int
from ..exceptions import ConfigurationError

__all__ = ["ExperimentSettings", "SweepResult"]


@dataclass(frozen=True)
class ExperimentSettings:
    """Shared knobs of the figure experiments.

    Attributes
    ----------
    scale:
        Fraction of the paper's data volume to use (1.0 = the paper's
        100,000-point files).  The default keeps benchmark runtimes laptop
        friendly; the relative ordering of algorithms is insensitive to it.
    n_runs:
        Number of random seeds each configuration is averaged over (the paper
        uses 10).
    memory_kb:
        Histogram memory, in KB, for experiments that do not sweep memory.
    base_seed:
        First seed; run ``i`` uses ``base_seed + i``.
    """

    scale: float = 0.08
    n_runs: int = 3
    memory_kb: float = 1.0
    base_seed: int = 0

    def __post_init__(self) -> None:
        require_positive_float(self.scale, "scale")
        require_positive_int(self.n_runs, "n_runs")
        require_positive_float(self.memory_kb, "memory_kb")
        if self.scale > 1.0:
            raise ConfigurationError(f"scale must be at most 1.0, got {self.scale}")

    @property
    def seeds(self) -> list[int]:
        """The seeds of the individual runs."""
        return [self.base_seed + run for run in range(self.n_runs)]

    def with_scale(self, scale: float) -> ExperimentSettings:
        """Copy of the settings with a different data-volume scale."""
        return replace(self, scale=scale)

    def with_runs(self, n_runs: int) -> ExperimentSettings:
        """Copy of the settings with a different number of repetitions."""
        return replace(self, n_runs=n_runs)


#: Paper-scale settings: the full 100,000-point files averaged over 10 seeds.
PAPER_SCALE_SETTINGS = ExperimentSettings(scale=1.0, n_runs=10)


@dataclass
class SweepResult:
    """Result of sweeping one parameter and measuring one metric per algorithm.

    Attributes
    ----------
    name:
        Experiment identifier (e.g. ``"fig05"``).
    x_label:
        Name of the swept parameter (e.g. ``"S (centre skew)"``).
    x_values:
        The sweep points.
    series:
        Mapping from algorithm name to the measured metric at each sweep point.
    y_label:
        Name of the measured metric (KS statistic unless stated otherwise).
    metadata:
        Free-form annotations (fixed parameters, scale, number of runs).
    """

    name: str
    x_label: str
    x_values: list[float]
    series: dict[str, list[float]]
    y_label: str = "KS statistic"
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for algorithm, values in self.series.items():
            if len(values) != len(self.x_values):
                raise ConfigurationError(
                    f"series {algorithm!r} has {len(values)} values for "
                    f"{len(self.x_values)} sweep points"
                )

    @property
    def algorithms(self) -> list[str]:
        """The algorithm names in insertion order."""
        return list(self.series)

    def row(self, index: int) -> dict[str, float]:
        """All measurements at sweep point ``index`` keyed by algorithm."""
        return {algorithm: values[index] for algorithm, values in self.series.items()}

    def best_algorithm(self, index: int) -> str:
        """Algorithm with the smallest metric at sweep point ``index``."""
        row = self.row(index)
        return min(row, key=row.get)

    def mean(self, algorithm: str) -> float:
        """Mean of an algorithm's series across the sweep."""
        values = self.series[algorithm]
        return sum(values) / len(values)
