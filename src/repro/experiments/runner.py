"""Low-level experiment helpers: stream replay, KS measurement, seed averaging."""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from ..core.base import DynamicHistogram, Histogram
from ..metrics.distribution import DataDistribution
from ..metrics.ks import ks_statistic
from ..workloads.streams import UpdateStream

__all__ = [
    "build_truth",
    "replay",
    "final_ks",
    "checkpointed_ks",
    "average_over_seeds",
]


def build_truth(stream: UpdateStream) -> DataDistribution:
    """Exact distribution of the data that remains live after the full stream."""
    return DataDistribution(stream.live_values())


def replay(
    histogram: DynamicHistogram,
    stream: Iterable,
    *,
    truth: DataDistribution | None = None,
) -> None:
    """Apply every operation of a stream to a histogram (and the ground truth)."""
    for op in stream:
        if op.is_insert:
            histogram.insert(op.value)
            if truth is not None:
                truth.add(op.value)
        else:
            histogram.delete(op.value)
            if truth is not None:
                truth.remove(op.value)


def final_ks(histogram: DynamicHistogram, stream: UpdateStream) -> float:
    """Replay a stream and return the KS statistic against the live data."""
    truth = DataDistribution()
    replay(histogram, stream, truth=truth)
    return ks_statistic(truth, histogram)


def checkpointed_ks(
    histogram: DynamicHistogram,
    stream: UpdateStream,
    fractions: Sequence[float],
) -> list[tuple[float, float]]:
    """KS statistic measured after each requested fraction of the stream.

    Returns ``(fraction, ks)`` pairs; fractions outside (0, 1] are rejected.
    This reproduces the "precision degradation as the data size increases"
    experiments of Sections 7.2.1 and 7.3.1.
    """
    for fraction in fractions:
        if not 0 < fraction <= 1:
            raise ValueError(f"fractions must lie in (0, 1], got {fraction}")
    ordered = sorted(fractions)
    operations = stream.operations
    total = len(operations)
    truth = DataDistribution()

    results: list[tuple[float, float]] = []
    position = 0
    for fraction in ordered:
        target = int(round(fraction * total))
        while position < target:
            op = operations[position]
            if op.is_insert:
                histogram.insert(op.value)
                truth.add(op.value)
            else:
                histogram.delete(op.value)
                truth.remove(op.value)
            position += 1
        results.append((fraction, ks_statistic(truth, histogram)))
    return results


def average_over_seeds(measure: Callable[[int], float], seeds: Sequence[int]) -> float:
    """Average a seeded measurement over several seeds."""
    if not seeds:
        raise ValueError("seeds must be a non-empty sequence")
    return sum(measure(seed) for seed in seeds) / len(seeds)
