"""Experiment harness: seeded sweeps reproducing every figure of the paper.

The modules in this package separate three concerns:

* :mod:`~repro.experiments.runner` -- low-level helpers that replay update
  streams against a histogram and the exact ground truth and measure the KS
  statistic, optionally at checkpoints and averaged over seeds;
* :mod:`~repro.experiments.figures` -- one function per figure of the paper
  (Figures 5-23) plus the ablation studies listed in DESIGN.md, each returning
  a :class:`~repro.experiments.config.SweepResult`;
* :mod:`~repro.experiments.reporting` -- plain-text tables and CSV export of
  sweep results, used by the benchmark harness and EXPERIMENTS.md.
"""

from .config import ExperimentSettings, SweepResult
from .runner import (
    replay,
    final_ks,
    checkpointed_ks,
    average_over_seeds,
    build_truth,
)
from .reporting import format_sweep_table, sweep_to_csv

__all__ = [
    "ExperimentSettings",
    "SweepResult",
    "replay",
    "final_ks",
    "checkpointed_ks",
    "average_over_seeds",
    "build_truth",
    "format_sweep_table",
    "sweep_to_csv",
]
