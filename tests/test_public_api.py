"""Tests of the package-level public API surface."""

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    def test_key_classes_are_exported(self):
        for name in (
            "DCHistogram",
            "DVOHistogram",
            "DADOHistogram",
            "SSBMHistogram",
            "SADOHistogram",
            "VOptimalHistogram",
            "CompressedHistogram",
            "ApproximateCompressedHistogram",
            "DataDistribution",
            "ks_statistic",
            "SelectivityEstimator",
            "GlobalHistogramCoordinator",
        ):
            assert name in repro.__all__

    def test_quickstart_docstring_example(self):
        from repro import DADOHistogram, DataDistribution, ks_statistic

        histogram = DADOHistogram(n_buckets=32)
        truth = DataDistribution()
        for value in range(1000):
            histogram.insert(value % 97)
            truth.add(value % 97)
        assert ks_statistic(truth, histogram) < 0.1

    def test_exceptions_form_a_hierarchy(self):
        assert issubclass(repro.ConfigurationError, repro.HistogramError)
        assert issubclass(repro.DeletionError, repro.HistogramError)
        assert issubclass(repro.EmptyHistogramError, repro.HistogramError)
        assert issubclass(repro.InsufficientDataError, repro.HistogramError)
