"""Tests for the dynamic lock-order race detector (tests/lockcheck.py)."""

from __future__ import annotations

import socket
import threading

from lockcheck import LockOrderMonitor


def _run_in_thread(target) -> None:
    thread = threading.Thread(target=target)
    thread.start()
    thread.join()


class TestLockOrderCycles:
    def test_seeded_inversion_is_detected(self):
        """The canonical deadlock seed: A->B in one thread, B->A in another.

        The two orders run *sequentially* -- detection is graph-based, so
        the regression test needs no lucky interleaving to stay red.
        """
        with LockOrderMonitor() as monitor:
            lock_a = threading.Lock()
            lock_b = threading.Lock()

            def forward() -> None:
                with lock_a, lock_b:
                    pass

            def backward() -> None:
                with lock_b, lock_a:
                    pass

            _run_in_thread(forward)
            _run_in_thread(backward)
        problems = monitor.report()
        assert problems, "inverted acquisition order must be reported"
        assert "cycle" in problems[0]

    def test_consistent_order_is_clean(self):
        with LockOrderMonitor() as monitor:
            lock_a = threading.Lock()
            lock_b = threading.Lock()
            for _ in range(3):

                def forward() -> None:
                    with lock_a, lock_b:
                        pass

                _run_in_thread(forward)
        assert monitor.report() == []

    def test_sorted_same_site_acquisition_is_clean(self):
        """Compaction's pattern: many locks from ONE creation site, always
        taken in sorted order.  A site-aggregated graph would self-loop
        here; the instance graph must stay clean."""
        with LockOrderMonitor() as monitor:
            locks = [threading.RLock() for _ in range(4)]

            def sweep() -> None:
                for lock in locks:
                    lock.acquire()
                for lock in reversed(locks):
                    lock.release()

            _run_in_thread(sweep)
            _run_in_thread(sweep)
        assert monitor.report() == []

    def test_three_lock_rotation_cycle(self):
        with LockOrderMonitor() as monitor:
            lock_a, lock_b, lock_c = (threading.Lock() for _ in range(3))
            pairs = [(lock_a, lock_b), (lock_b, lock_c), (lock_c, lock_a)]
            for first, second in pairs:

                def chain(first=first, second=second) -> None:
                    with first, second:
                        pass

                _run_in_thread(chain)
        problems = monitor.report()
        assert any("cycle" in p for p in problems)

    def test_rlock_reentry_adds_no_edge(self):
        with LockOrderMonitor() as monitor:
            lock = threading.RLock()

            def reenter() -> None:
                with lock, lock:
                    pass

            _run_in_thread(reenter)
        assert monitor.report() == []


class TestConditionCompatibility:
    def test_condition_wait_notify_works_under_monitor(self):
        """Condition(RLock) relies on _release_save/_acquire_restore; the
        wrappers must keep a real producer/consumer handoff working."""
        with LockOrderMonitor() as monitor:
            cv = threading.Condition()
            ready: list[int] = []

            def producer() -> None:
                with cv:
                    ready.append(1)
                    cv.notify()

            consumer_done = threading.Event()

            def consumer() -> None:
                with cv:
                    while not ready:
                        cv.wait(timeout=5)
                consumer_done.set()

            consumer_thread = threading.Thread(target=consumer)
            consumer_thread.start()
            producer_thread = threading.Thread(target=producer)
            producer_thread.start()
            producer_thread.join()
            consumer_thread.join()
            assert consumer_done.is_set()
        assert monitor.report() == []

    def test_event_works_under_monitor(self):
        """threading.Event wraps a plain Lock in a Condition -- the wrapper
        must emulate the non-reentrant fallback hooks."""
        with LockOrderMonitor() as monitor:
            event = threading.Event()

            def setter() -> None:
                event.set()

            thread = threading.Thread(target=setter)
            thread.start()
            assert event.wait(timeout=5)
            thread.join()
        assert monitor.report() == []


class TestSocketUnderLock:
    def test_blocking_connect_under_lock_is_flagged(self):
        with LockOrderMonitor() as monitor:
            server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            server.bind(("127.0.0.1", 0))
            server.listen(1)
            port = server.getsockname()[1]
            lock = threading.Lock()

            def offender() -> None:
                client = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                with lock:
                    client.connect(("127.0.0.1", port))
                client.close()

            _run_in_thread(offender)
            server.close()
        problems = monitor.report()
        assert any("socket.connect" in p for p in problems)

    def test_socket_io_without_lock_is_clean(self):
        with LockOrderMonitor() as monitor:
            server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            server.bind(("127.0.0.1", 0))
            server.listen(1)
            port = server.getsockname()[1]
            client = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            client.connect(("127.0.0.1", port))
            client.close()
            server.close()
        assert monitor.report() == []


class TestMonitorLifecycle:
    def test_locks_survive_monitor_teardown(self):
        """A daemon thread from a finished test must not crash on a lock
        created while the monitor was active."""
        with LockOrderMonitor():
            lock = threading.Lock()
        with lock:
            pass
        assert not lock.locked()

    def test_factories_restored_after_exit(self):
        original_lock = threading.Lock
        original_socket = socket.socket
        with LockOrderMonitor():
            assert threading.Lock is not original_lock
        assert threading.Lock is original_lock
        assert socket.socket is original_socket

    def test_nested_monitors_rejected(self):
        import pytest

        with LockOrderMonitor(), pytest.raises(RuntimeError):
            LockOrderMonitor().__enter__()
