"""Unit tests for the bucket value types."""

import pytest

from repro import Bucket, SubBucketedBucket
from repro.exceptions import ConfigurationError


class TestBucket:
    def test_basic_properties(self):
        bucket = Bucket(0.0, 10.0, 50.0)
        assert bucket.width == 10.0
        assert not bucket.is_point_mass
        assert bucket.density == 5.0

    def test_point_mass(self):
        bucket = Bucket(3.0, 3.0, 7.0)
        assert bucket.is_point_mass
        assert bucket.width == 0.0
        with pytest.raises(ConfigurationError):
            bucket.density

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ConfigurationError):
            Bucket(5.0, 4.0, 1.0)
        with pytest.raises(ConfigurationError):
            Bucket(0.0, 1.0, -1.0)

    def test_count_at_most_uniform(self):
        bucket = Bucket(0.0, 10.0, 100.0)
        assert bucket.count_at_most(-1.0) == 0.0
        assert bucket.count_at_most(5.0) == 50.0
        assert bucket.count_at_most(10.0) == 100.0
        assert bucket.count_at_most(99.0) == 100.0

    def test_count_at_most_point_mass(self):
        bucket = Bucket(3.0, 3.0, 7.0)
        assert bucket.count_at_most(2.9) == 0.0
        assert bucket.count_at_most(3.0) == 7.0

    def test_count_in_range(self):
        bucket = Bucket(0.0, 10.0, 100.0)
        assert bucket.count_in_range(2.0, 4.0) == pytest.approx(20.0)
        assert bucket.count_in_range(-5.0, 20.0) == 100.0
        assert bucket.count_in_range(20.0, 30.0) == 0.0
        assert bucket.count_in_range(4.0, 2.0) == 0.0

    def test_count_in_range_point_mass(self):
        bucket = Bucket(3.0, 3.0, 7.0)
        assert bucket.count_in_range(0.0, 5.0) == 7.0
        assert bucket.count_in_range(4.0, 5.0) == 0.0

    def test_with_count(self):
        bucket = Bucket(0.0, 1.0, 5.0)
        assert bucket.with_count(9.0).count == 9.0
        assert bucket.count == 5.0


class TestSubBucketedBucket:
    def test_basic_properties(self):
        bucket = SubBucketedBucket(0.0, 10.0, 30.0, 10.0)
        assert bucket.midpoint == 5.0
        assert bucket.count == 40.0
        assert bucket.width == 10.0

    def test_segments(self):
        bucket = SubBucketedBucket(0.0, 10.0, 30.0, 10.0)
        assert bucket.as_segments() == [(0.0, 5.0, 30.0), (5.0, 10.0, 10.0)]

    def test_point_mass_segments(self):
        bucket = SubBucketedBucket(4.0, 4.0, 3.0, 0.0)
        assert bucket.as_segments() == [(4.0, 4.0, 3.0)]
        assert bucket.is_point_mass

    def test_as_buckets(self):
        bucket = SubBucketedBucket(0.0, 4.0, 6.0, 2.0)
        halves = bucket.as_buckets()
        assert len(halves) == 2
        assert halves[0].count == 6.0
        assert halves[1].left == 2.0

    def test_with_counts(self):
        bucket = SubBucketedBucket(0.0, 4.0, 6.0, 2.0)
        updated = bucket.with_counts(1.0, 1.0)
        assert updated.count == 2.0
        assert bucket.count == 8.0

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            SubBucketedBucket(5.0, 4.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            SubBucketedBucket(0.0, 1.0, -1.0, 1.0)
