"""Unit tests for the update-stream workload generators (Section 7)."""

import numpy as np
import pytest

from repro import (
    UpdateOp,
    UpdateStream,
    insertions_then_random_deletions,
    insertions_with_interleaved_deletions,
    random_insertions,
    sorted_insertions,
    sorted_insertions_then_sorted_deletions,
)
from repro.exceptions import ConfigurationError


class TestUpdateOp:
    def test_kinds(self):
        assert UpdateOp("insert", 3.0).is_insert
        assert UpdateOp("delete", 3.0).is_delete

    def test_invalid_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            UpdateOp("upsert", 3.0)


class TestUpdateStream:
    def test_inserts_factory_and_counts(self):
        stream = UpdateStream.inserts([1, 2, 3])
        assert len(stream) == 3
        assert stream.insert_count == 3
        assert stream.delete_count == 0
        assert stream[0].value == 1.0

    def test_live_values(self):
        ops = [
            UpdateOp("insert", 1.0),
            UpdateOp("insert", 2.0),
            UpdateOp("insert", 2.0),
            UpdateOp("delete", 2.0),
        ]
        stream = UpdateStream(ops)
        assert sorted(stream.live_values()) == [1.0, 2.0]

    def test_live_values_rejects_over_deletion(self):
        stream = UpdateStream([UpdateOp("delete", 1.0)])
        with pytest.raises(ConfigurationError):
            stream.live_values()

    def test_prefix(self):
        stream = UpdateStream.inserts([1, 2, 3, 4])
        assert len(stream.prefix(2)) == 2
        with pytest.raises(ConfigurationError):
            stream.prefix(-1)


class TestInsertionOrders:
    def test_random_insertions_is_permutation(self, uniform_values):
        stream = random_insertions(uniform_values, seed=1)
        assert stream.insert_count == len(uniform_values)
        assert sorted(op.value for op in stream) == sorted(float(v) for v in uniform_values)

    def test_random_insertions_depends_on_seed(self, uniform_values):
        first = [op.value for op in random_insertions(uniform_values, seed=1)]
        second = [op.value for op in random_insertions(uniform_values, seed=2)]
        assert first != second

    def test_sorted_insertions(self, uniform_values):
        values = [op.value for op in sorted_insertions(uniform_values)]
        assert values == sorted(values)

    def test_sorted_insertions_descending(self, uniform_values):
        values = [op.value for op in sorted_insertions(uniform_values, descending=True)]
        assert values == sorted(values, reverse=True)

    def test_two_dimensional_input_rejected(self):
        with pytest.raises(ConfigurationError):
            random_insertions(np.zeros((3, 3)))


class TestDeletionWorkloads:
    def test_interleaved_deletions_respect_probability_zero(self, uniform_values):
        stream = insertions_with_interleaved_deletions(
            uniform_values, delete_probability=0.0, seed=1
        )
        assert stream.delete_count == 0

    def test_interleaved_deletions_only_delete_live_values(self, uniform_values):
        stream = insertions_with_interleaved_deletions(
            uniform_values, delete_probability=0.4, seed=2
        )
        # Replaying must never delete something that is not currently live.
        live = {}
        for op in stream:
            if op.is_insert:
                live[op.value] = live.get(op.value, 0) + 1
            else:
                assert live.get(op.value, 0) > 0
                live[op.value] -= 1

    def test_insert_then_delete_fraction(self, uniform_values):
        stream = insertions_then_random_deletions(
            uniform_values, delete_fraction=0.5, seed=3
        )
        assert stream.insert_count == len(uniform_values)
        assert stream.delete_count == round(0.5 * len(uniform_values))
        # All deletions come after all insertions.
        kinds = [op.kind for op in stream]
        assert kinds == ["insert"] * stream.insert_count + ["delete"] * stream.delete_count

    def test_sorted_insert_sorted_delete(self, uniform_values):
        stream = sorted_insertions_then_sorted_deletions(
            uniform_values, delete_fraction=0.25
        )
        inserts = [op.value for op in stream if op.is_insert]
        deletes = [op.value for op in stream if op.is_delete]
        assert inserts == sorted(inserts)
        assert deletes == sorted(deletes)
        assert len(deletes) == round(0.25 * len(uniform_values))
        # Sorted deletions remove a prefix of the sorted data.
        assert max(deletes) <= np.quantile(np.asarray(inserts), 0.3)

    def test_delete_fraction_validation(self, uniform_values):
        with pytest.raises(ConfigurationError):
            insertions_then_random_deletions(uniform_values, delete_fraction=1.5)
