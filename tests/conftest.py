"""Shared pytest fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ClusterDistributionConfig,
    DataDistribution,
    generate_cluster_values,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for ad-hoc randomness in tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_cluster_config() -> ClusterDistributionConfig:
    """A small, fast-to-generate cluster distribution configuration."""
    return ClusterDistributionConfig(
        n_points=2000,
        n_clusters=20,
        center_skew=1.0,
        size_skew=1.0,
        cluster_sd=2.0,
        domain=(0, 1000),
        seed=7,
    )


@pytest.fixture
def small_values(small_cluster_config) -> np.ndarray:
    """Raw values of the small cluster distribution."""
    return generate_cluster_values(small_cluster_config)


@pytest.fixture
def small_distribution(small_values) -> DataDistribution:
    """Exact distribution of the small cluster data."""
    return DataDistribution(small_values)


@pytest.fixture
def skewed_distribution() -> DataDistribution:
    """A hand-built skewed distribution with one dominant value."""
    pairs = [(10, 5), (11, 3), (12, 2), (20, 40), (21, 6), (35, 1), (36, 1), (50, 12)]
    return DataDistribution.from_frequencies(pairs)


@pytest.fixture
def uniform_values() -> np.ndarray:
    """A deterministic, nearly uniform integer data set."""
    rng = np.random.default_rng(3)
    return rng.integers(0, 200, size=1500)
