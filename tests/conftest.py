"""Shared pytest fixtures and the per-test timeout watchdog."""

from __future__ import annotations

import os
import signal
import sys
import threading

import numpy as np
import pytest

from repro import (
    ClusterDistributionConfig,
    DataDistribution,
    generate_cluster_values,
)

sys.path.insert(0, os.path.dirname(__file__))  # for `import lockcheck`

from lockcheck import LockOrderMonitor  # noqa: E402

#: Modules whose tests run under the dynamic lock-order monitor.  These are
#: the suites that exercise real cross-thread store/cluster interleavings;
#: wrapping everything else would only slow the tier-1 run down.
LOCKCHECK_MODULES = frozenset(
    {
        "test_service_concurrency",
        "test_ingest_lifecycle",
        "test_cluster_properties",
        "test_replication_properties",
        "test_fault_injection",
        "test_spawned_cluster",
        "test_obs",
        "test_profile",
    }
)

#: Default per-test watchdog.  Generous -- its job is to turn a deadlocked
#: failover/concurrency test into a fast, attributable failure instead of a
#: hung CI job, not to police slow-but-progressing tests.  Override per test
#: with ``@pytest.mark.timeout(seconds)``.
DEFAULT_TEST_TIMEOUT = 120.0


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """SIGALRM-based per-test timeout (no third-party plugin available).

    The alarm interrupts the main thread even inside ``lock.acquire()`` /
    ``thread.join()`` -- exactly where a deadlocked concurrency test hangs.
    Skipped when the platform has no SIGALRM or tests run off the main
    thread (the watchdog then simply does not arm; it never breaks a run).
    """
    marker = item.get_closest_marker("timeout")
    seconds = float(marker.args[0]) if marker and marker.args else DEFAULT_TEST_TIMEOUT
    can_arm = (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
        and seconds > 0
    )
    if not can_arm:
        return (yield)

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded its {seconds:.0f}s watchdog (likely deadlocked); "
            "see pytest.ini markers"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def _lockcheck(request):
    """Run concurrency-suite tests under the lock-order race monitor.

    Active only for the modules in ``LOCKCHECK_MODULES`` (set
    ``REPRO_LOCKCHECK=0`` to opt out, e.g. when bisecting an unrelated
    failure).  Any observed lock-order cycle or blocking-socket-I/O-under-
    lock fails the test that produced it.
    """
    if (
        request.module.__name__ not in LOCKCHECK_MODULES
        or os.environ.get("REPRO_LOCKCHECK", "1") == "0"
    ):
        yield
        return
    with LockOrderMonitor() as monitor:
        yield
    problems = monitor.report()
    if problems:
        pytest.fail(
            "lockcheck: " + "; ".join(problems), pytrace=False
        )


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for ad-hoc randomness in tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_cluster_config() -> ClusterDistributionConfig:
    """A small, fast-to-generate cluster distribution configuration."""
    return ClusterDistributionConfig(
        n_points=2000,
        n_clusters=20,
        center_skew=1.0,
        size_skew=1.0,
        cluster_sd=2.0,
        domain=(0, 1000),
        seed=7,
    )


@pytest.fixture
def small_values(small_cluster_config) -> np.ndarray:
    """Raw values of the small cluster distribution."""
    return generate_cluster_values(small_cluster_config)


@pytest.fixture
def small_distribution(small_values) -> DataDistribution:
    """Exact distribution of the small cluster data."""
    return DataDistribution(small_values)


@pytest.fixture
def skewed_distribution() -> DataDistribution:
    """A hand-built skewed distribution with one dominant value."""
    pairs = [(10, 5), (11, 3), (12, 2), (20, 40), (21, 6), (35, 1), (36, 1), (50, 12)]
    return DataDistribution.from_frequencies(pairs)


@pytest.fixture
def uniform_values() -> np.ndarray:
    """A deterministic, nearly uniform integer data set."""
    rng = np.random.default_rng(3)
    return rng.integers(0, 200, size=1500)
