"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import (
    Bucket,
    DataDistribution,
    DADOHistogram,
    DCHistogram,
    DVOHistogram,
    ReservoirSampler,
    SubBucketedBucket,
    ks_statistic_between,
)
from repro.core.deviation import bucket_phi, merge_sub_buckets, merged_phi, split_bucket
from repro.datagen.zipf import zipf_counts, zipf_weights
from repro.static.ssbm import ssbm_partition
from repro.static.optimal_dp import optimal_partition

# Strategies -----------------------------------------------------------------

values_strategy = st.lists(
    st.integers(min_value=0, max_value=300), min_size=1, max_size=300
)

counts_strategy = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)


@st.composite
def sub_bucketed_pair(draw):
    """Two adjacent, non-overlapping sub-bucketed buckets with sane counts."""
    left = draw(st.floats(min_value=-1000, max_value=1000, allow_nan=False))
    width_a = draw(st.floats(min_value=0.5, max_value=500))
    gap = draw(st.floats(min_value=0.0, max_value=50))
    width_b = draw(st.floats(min_value=0.5, max_value=500))
    counts = [draw(counts_strategy) for _ in range(4)]
    first = SubBucketedBucket(left, left + width_a, counts[0], counts[1])
    second_left = left + width_a + gap
    second = SubBucketedBucket(second_left, second_left + width_b, counts[2], counts[3])
    return first, second


# DataDistribution ------------------------------------------------------------


@given(values_strategy)
def test_distribution_total_matches_input_length(values):
    dist = DataDistribution(values)
    assert dist.total_count == len(values)
    assert dist.distinct_count == len(set(values))


@given(values_strategy)
def test_distribution_cdf_is_monotone_and_normalised(values):
    dist = DataDistribution(values)
    points = np.linspace(min(values) - 1, max(values) + 1, 50)
    cdf = dist.cdf_many(points)
    assert np.all(np.diff(cdf) >= -1e-12)
    assert cdf[0] == 0.0 or min(values) <= points[0]
    assert cdf[-1] == 1.0


@given(values_strategy, st.integers(min_value=0, max_value=300))
def test_distribution_add_remove_round_trip(values, extra):
    dist = DataDistribution(values)
    before = dist.to_pairs()
    dist.add(extra)
    dist.remove(extra)
    assert dist.to_pairs() == before


@given(values_strategy)
def test_ks_between_identical_distributions_is_zero(values):
    dist = DataDistribution(values)
    assert ks_statistic_between(dist, dist.copy()) == 0.0


@given(values_strategy)
def test_range_count_matches_expanded_multiset(values):
    dist = DataDistribution(values)
    arr = np.asarray(values, dtype=float)
    low, high = np.percentile(arr, [20, 80])
    expected = np.count_nonzero((arr >= low) & (arr <= high))
    assert dist.range_count(low, high) == expected


# Buckets ---------------------------------------------------------------------


@given(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    st.floats(min_value=0.0, max_value=100),
    counts_strategy,
    st.floats(min_value=-150, max_value=250),
    st.floats(min_value=0.0, max_value=100),
)
def test_bucket_range_counts_are_bounded(left, width, count, query_low, query_width):
    bucket = Bucket(left, left + width, count)
    in_range = bucket.count_in_range(query_low, query_low + query_width)
    assert 0.0 <= in_range <= count + 1e-9
    assert bucket.count_at_most(bucket.right) >= count - 1e-6


# Deviation algebra -----------------------------------------------------------


@given(sub_bucketed_pair(), st.sampled_from(["variance", "absolute"]))
@settings(max_examples=200)
def test_merge_never_decreases_phi(pair, metric):
    first, second = pair
    combined = merged_phi(first, second, metric)
    separate = bucket_phi(first, metric) + bucket_phi(second, metric)
    assert combined >= separate - 1e-6 * max(1.0, abs(separate))


@given(sub_bucketed_pair())
def test_merge_preserves_count(pair):
    first, second = pair
    merged = merge_sub_buckets(first, second)
    np.testing.assert_allclose(merged.count, first.count + second.count, rtol=1e-9, atol=1e-9)


@given(sub_bucketed_pair(), st.sampled_from(["variance", "absolute"]))
def test_split_produces_zero_phi_halves(pair, metric):
    bucket, _ = pair
    assume(not bucket.is_point_mass)
    left, right = split_bucket(bucket)
    assert bucket_phi(left, metric) <= 1e-9 * max(1.0, bucket.count)
    assert bucket_phi(right, metric) <= 1e-9 * max(1.0, bucket.count)
    np.testing.assert_allclose(left.count + right.count, bucket.count, rtol=1e-9)


# Zipf ------------------------------------------------------------------------


@given(st.integers(min_value=1, max_value=500), st.floats(min_value=0.0, max_value=4.0))
def test_zipf_weights_are_a_distribution(n, skew):
    weights = zipf_weights(n, skew)
    assert len(weights) == n
    assert abs(weights.sum() - 1.0) < 1e-9
    assert np.all(weights > 0)


@given(
    st.integers(min_value=0, max_value=100_000),
    st.integers(min_value=1, max_value=200),
    st.floats(min_value=0.0, max_value=3.0),
)
def test_zipf_counts_sum_exactly(total, n, skew):
    counts = zipf_counts(total, n, skew)
    assert counts.sum() == total
    assert np.all(counts >= 0)


# Partitions ------------------------------------------------------------------


@given(
    st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False), min_size=2, max_size=60),
    st.integers(min_value=1, max_value=12),
)
def test_ssbm_partition_is_a_partition(frequencies, n_buckets):
    freqs = np.asarray(frequencies)
    partition = ssbm_partition(freqs, n_buckets)
    assert partition[0][0] == 0
    assert partition[-1][1] == len(freqs) - 1
    covered = sum(end - start + 1 for start, end in partition)
    assert covered == len(freqs)
    assert len(partition) == min(n_buckets, len(freqs))


@given(
    st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False), min_size=2, max_size=25),
    st.integers(min_value=1, max_value=6),
)
@settings(max_examples=60, deadline=None)
def test_optimal_partition_is_a_partition(frequencies, n_buckets):
    freqs = np.asarray(frequencies)
    partition = optimal_partition(freqs, n_buckets)
    assert partition[0][0] == 0
    assert partition[-1][1] == len(freqs) - 1
    covered = sum(end - start + 1 for start, end in partition)
    assert covered == len(freqs)


# Dynamic histograms ----------------------------------------------------------


@given(values_strategy)
@settings(max_examples=40, deadline=None)
def test_dado_count_conservation(values):
    histogram = DADOHistogram(12)
    for value in values:
        histogram.insert(float(value))
    np.testing.assert_allclose(histogram.total_count, len(values), rtol=1e-9)


@given(values_strategy)
@settings(max_examples=40, deadline=None)
def test_dc_count_conservation(values):
    histogram = DCHistogram(12)
    for value in values:
        histogram.insert(float(value))
    np.testing.assert_allclose(histogram.total_count, len(values), rtol=1e-6)


@given(values_strategy, st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_dado_insert_then_delete_everything(values, seed):
    histogram = DADOHistogram(10)
    rng = np.random.default_rng(seed)
    for value in values:
        histogram.insert(float(value))
    for value in rng.permutation(np.asarray(values, dtype=float)):
        histogram.delete(float(value))
    assert abs(histogram.total_count) < 1e-6


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "insert_far", "delete"]),
        st.integers(min_value=0, max_value=300),
    ),
    min_size=20,
    max_size=250,
)


@st.composite
def interleaved_stream(draw):
    """A stream of inserts, far out-of-range inserts and safe deletes."""
    ops = draw(ops_strategy)
    return ops


@given(st.sampled_from([DADOHistogram, DVOHistogram]), interleaved_stream())
@settings(max_examples=40, deadline=None)
def test_dynamic_vopt_mass_conservation_under_interleaved_stream(histogram_class, ops):
    """Mass in == mass retained under long interleaved update streams.

    Inserts (including far out-of-range ones, which exercise the borrow-and-
    merge path) add exactly one unit each; deletes remove exactly one unit of
    previously inserted mass.  No maintenance operation may leak mass.
    """
    histogram = histogram_class(10)
    live = 0
    far_offset = 100_000
    n_far = 0
    for op, value in ops:
        if op == "insert":
            histogram.insert(float(value))
            live += 1
        elif op == "insert_far":
            # Alternate far beyond both ends so end buckets keep stretching.
            n_far += 1
            sign = 1 if n_far % 2 else -1
            histogram.insert(float(sign * (far_offset + value * 10)))
            live += 1
        elif live > 0 and not histogram.is_loading:
            histogram.delete(float(value))
            live -= 1
    np.testing.assert_allclose(histogram.total_count, live, rtol=1e-9, atol=1e-6)


def _assert_view_matches_array_state(histogram):
    """The derived views and the BucketArray single source of truth agree.

    * the exposed ``buckets()`` list carries exactly the array's mass,
    * the zero-copy ``segment_view()`` answers queries identically to a view
      materialised from the exposed bucket list,
    * the spliced phi / pair-phi caches are bit-identical to a from-scratch
      rebuild from the borders and sub-counts.
    """
    from repro.core.segment_view import SegmentView

    array = histogram.bucket_array
    buckets = histogram.buckets()

    total_from_buckets = float(sum(bucket.count for bucket in buckets))
    np.testing.assert_allclose(total_from_buckets, array.total(), rtol=1e-12, atol=1e-9)

    view = histogram.segment_view()
    reference = SegmentView.from_buckets(buckets)
    assert view.fast == reference.fast
    assert view.n_buckets == reference.n_buckets
    np.testing.assert_allclose(view.total, reference.total, rtol=1e-12, atol=1e-9)
    np.testing.assert_array_equal(view.pm_values, reference.pm_values)
    np.testing.assert_allclose(view.pm_counts, reference.pm_counts, rtol=1e-12)
    np.testing.assert_array_equal(view.reg_lefts, reference.reg_lefts)
    np.testing.assert_array_equal(view.reg_rights, reference.reg_rights)
    np.testing.assert_allclose(view.reg_counts, reference.reg_counts, rtol=1e-12)

    spliced_phis = array.phis.copy()
    spliced_pairs = array.pair_phis.copy()
    histogram._rebuild_phis()
    np.testing.assert_array_equal(spliced_phis, array.phis)
    np.testing.assert_array_equal(spliced_pairs, array.pair_phis)


@given(interleaved_stream())
@settings(max_examples=25, deadline=None)
def test_views_match_array_state_under_interleaved_maintenance(ops):
    """buckets()/segment_view() always agree with the live BucketArray.

    The stream drives every maintenance operation -- split/merge repartitions,
    out-of-range borrows, deletions with spill -- and at checkpoints asserts
    that the derived views and the spliced phi caches exactly describe the
    array state (the single-source-of-truth invariant of the array core).
    """
    histogram = DADOHistogram(8)
    live = 0
    for index, (op, value) in enumerate(ops):
        if op == "insert":
            histogram.insert(float(value))
            live += 1
        elif op == "insert_far":
            histogram.insert(float(50_000 + value * 7))
            live += 1
        elif live > 0 and not histogram.is_loading:
            histogram.delete(float(value))
            live -= 1
        if histogram.is_loading or index % 10:
            continue
        _assert_view_matches_array_state(histogram)
    if not histogram.is_loading:
        _assert_view_matches_array_state(histogram)


@given(values_strategy, st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_delete_many_matches_per_value_deletes(values, seed):
    """The vectorised delete path is observationally equal to per-value deletes."""
    per_value = DADOHistogram(10)
    batched = DADOHistogram(10)
    floats = [float(v) for v in values]
    per_value.insert_many(floats, repartition_interval=4)
    batched.insert_many(floats, repartition_interval=4)

    rng = np.random.default_rng(seed)
    order = rng.permutation(np.asarray(floats, dtype=float))
    to_delete = order[: len(order) // 2]
    for value in to_delete:
        per_value.delete(float(value))
    batched.delete_many(list(to_delete))

    a = [(b.left, b.right, b.count) for b in per_value.buckets()]
    b = [(b.left, b.right, b.count) for b in batched.buckets()]
    assert len(a) == len(b)
    for (left_a, right_a, count_a), (left_b, right_b, count_b) in zip(a, b, strict=True):
        assert left_a == left_b and right_a == right_b
        np.testing.assert_allclose(count_a, count_b, rtol=1e-9, atol=1e-9)


@given(
    st.sampled_from([DCHistogram, DVOHistogram, DADOHistogram]),
    values_strategy,
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_delete_heavy_mass_conservation(histogram_class, values, seed):
    """Delete-heavy batches conserve mass exactly on DC and DVO/DADO.

    Every inserted value is deleted again through ``delete_many`` in shuffled
    batches (the paper's Figure 17-18 regime); after each batch the total
    count must equal the live mass, and the histogram ends empty.
    """
    histogram = histogram_class(10)
    floats = [float(v) for v in values]
    histogram.insert_many(floats, repartition_interval=8)
    rng = np.random.default_rng(seed)
    order = rng.permutation(np.asarray(floats, dtype=float))
    remaining = len(order)
    position = 0
    while position < len(order):
        batch = [float(v) for v in order[position : position + 37]]
        position += len(batch)
        histogram.delete_many(batch)
        remaining -= len(batch)
        np.testing.assert_allclose(
            histogram.total_count, remaining, rtol=1e-9, atol=1e-6
        )
    np.testing.assert_allclose(histogram.total_count, 0.0, atol=1e-6)


# Reservoir sampling ----------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=50),
    st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), max_size=300),
)
def test_reservoir_never_exceeds_capacity(capacity, stream):
    sampler = ReservoirSampler(capacity, seed=0)
    sampler.offer_many(stream)
    assert sampler.size == min(capacity, len(stream))
    assert sampler.seen_count == len(stream)
    assert all(value in [float(v) for v in stream] for value in sampler.values())
