"""Fault injection against REAL shard processes (the spawned fleet).

The in-process fault-injection suite exercises the coordinator's failover
logic with simulated outages (``FlakyShard``).  This module points the same
scenarios at actual OS processes spawned by the
:class:`~repro.cluster.supervisor.ShardSupervisor`: ``kill -9`` a worker,
read through the outage, let the supervisor respawn it on the same port,
and heal it with ``resync`` -- asserting bit-identical state, not just
plausible counts.

Marked ``slow``: each test pays real process spawn/teardown (a few seconds).
The nightly CI job runs them; locally use ``pytest -m slow``.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.cluster import ClusterCoordinator, ShardRouter, ShardSupervisor
from repro.exceptions import ShardUnavailableError

pytestmark = pytest.mark.slow


def _values(n, modulus=500):
    return [float(v % modulus) for v in range(n)]


@pytest.fixture
def fleet(tmp_path):
    """3 spawned shards with per-shard WALs, rf=2, replica reads on."""
    supervisor = ShardSupervisor(
        3, wal_root=tmp_path / "wal", restart=True, poll_interval=0.1
    )
    shards = supervisor.start()
    router = ShardRouter([s.shard_id for s in shards], replication_factor=2)
    coordinator = ClusterCoordinator(shards, router=router, replica_reads=True)
    try:
        yield supervisor, coordinator
    finally:
        coordinator.close()
        supervisor.close()


class TestSpawnedFleetBasics:
    def test_ingest_and_estimates_cross_process(self, fleet):
        supervisor, coordinator = fleet
        coordinator.create("age", "dc", memory_kb=0.5)
        coordinator.ingest("age", insert=_values(3000))
        assert coordinator.total_count("age") == pytest.approx(3000.0)
        estimate = coordinator.estimate_range("age", 0.0, 250.0)
        assert estimate == pytest.approx(1500.0, rel=0.1)

    def test_describe_reports_live_fleet(self, fleet):
        supervisor, coordinator = fleet
        described = supervisor.describe()
        assert sorted(described) == ["shard-0", "shard-1", "shard-2"]
        for info in described.values():
            assert info["alive"] is True
            assert info["restarts"] == 0
            assert info["pid"] > 0

    def test_close_leaves_no_processes(self, tmp_path):
        supervisor = ShardSupervisor(2, wal_root=tmp_path / "wal")
        supervisor.start()
        pids = [supervisor.pid(sid) for sid in supervisor.shard_ids]
        supervisor.close()
        supervisor.close()  # idempotent
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)


class TestKillNineFailover:
    def test_reads_fail_over_while_a_worker_is_down(self, fleet):
        supervisor, coordinator = fleet
        coordinator.create("age", "dc", memory_kb=0.5)
        coordinator.ingest("age", insert=_values(2000))
        before = coordinator.total_count("age")

        victim = coordinator.router.replicas_for("age")[0]
        os.kill(supervisor.pid(victim), signal.SIGKILL)
        # The primary is gone; the replica answers (connect retries + failover).
        assert coordinator.total_count("age") == pytest.approx(before)

    def test_supervisor_respawns_on_the_same_port(self, fleet):
        supervisor, coordinator = fleet
        victim = supervisor.shard_ids[0]
        port_before = supervisor.port(victim)
        os.kill(supervisor.pid(victim), signal.SIGKILL)
        supervisor.wait_until_alive(victim, timeout=30.0)
        described = supervisor.describe()
        assert described[victim]["restarts"] == 1
        assert described[victim]["port"] == port_before
        assert any("exited" in event for event in described[victim]["events"])

    def test_wal_recovery_is_bit_identical_after_kill_nine(self, fleet):
        supervisor, coordinator = fleet
        coordinator.create("age", "dc", memory_kb=0.5)
        coordinator.ingest("age", insert=_values(1500))
        primary = coordinator.router.replicas_for("age")[0]
        shard = coordinator.shard(primary)
        snapshot_before = shard.snapshot("age")

        os.kill(supervisor.pid(primary), signal.SIGKILL)
        supervisor.wait_until_alive(primary, timeout=30.0)
        # The respawned worker replayed its own WAL: same state, bit for bit.
        assert shard.snapshot("age") == snapshot_before

    def test_resync_heals_a_wiped_replica_bit_identically(self, tmp_path):
        # No WAL for the victim's data to survive on: a respawned worker
        # comes back empty and only resync can heal it.
        supervisor = ShardSupervisor(3, restart=True, poll_interval=0.1)
        shards = supervisor.start()
        router = ShardRouter([s.shard_id for s in shards], replication_factor=2)
        coordinator = ClusterCoordinator(shards, router=router, replica_reads=True)
        try:
            coordinator.create("age", "dc", memory_kb=0.5)
            coordinator.ingest("age", insert=_values(2500))
            primary_id, follower_id = coordinator.router.replicas_for("age")
            reference = coordinator.shard(primary_id).snapshot("age")

            os.kill(supervisor.pid(follower_id), signal.SIGKILL)
            supervisor.wait_until_alive(follower_id, timeout=30.0)
            # Respawned without durable state: the attribute is gone.
            assert coordinator.shard(follower_id).names() == []

            healed = coordinator.resync(follower_id)
            assert "age" in healed["resynced"]
            healed_snapshot = coordinator.shard(follower_id).snapshot("age")
            ref = {k: v for k, v in reference.items() if k != "generation"}
            got = {k: v for k, v in healed_snapshot.items() if k != "generation"}
            assert got == ref
        finally:
            coordinator.close()
            supervisor.close()

    def test_writes_surface_unavailable_when_all_replicas_down(self, tmp_path):
        supervisor = ShardSupervisor(
            2, wal_root=tmp_path / "wal", restart=False
        )
        shards = supervisor.start()
        router = ShardRouter([s.shard_id for s in shards], replication_factor=1)
        coordinator = ClusterCoordinator(shards, router=router)
        try:
            coordinator.create("age", "dc", memory_kb=0.5)
            target = coordinator.router.replicas_for("age")[0]
            os.kill(supervisor.pid(target), signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if not supervisor.describe()[target]["alive"]:
                    break
                time.sleep(0.05)
            with pytest.raises(ShardUnavailableError):
                coordinator.ingest("age", insert=[1.0])
        finally:
            coordinator.close()
            supervisor.close()


class TestRestartCap:
    def test_restarts_stop_at_the_cap(self, tmp_path):
        supervisor = ShardSupervisor(
            1,
            wal_root=tmp_path / "wal",
            restart=True,
            max_restarts=1,
            poll_interval=0.05,
        )
        supervisor.start()
        try:
            shard_id = supervisor.shard_ids[0]
            os.kill(supervisor.pid(shard_id), signal.SIGKILL)
            supervisor.wait_until_alive(shard_id, timeout=30.0)
            assert supervisor.describe()[shard_id]["restarts"] == 1
            # Second murder: the cap is reached, the shard stays down.
            os.kill(supervisor.pid(shard_id), signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                info = supervisor.describe()[shard_id]
                if not info["alive"]:
                    break
                time.sleep(0.05)
            info = supervisor.describe()[shard_id]
            assert info["alive"] is False
            assert info["restarts"] == 1
        finally:
            supervisor.close()
