"""Fault-injection test doubles for the cluster layer.

:class:`FlakyShard` wraps any :class:`~repro.cluster.protocol.ShardBackend`
with scripted failure points, so tests can drive the coordinator through the
exact crash windows that matter for exactly-once semantics:

* **down** -- the shard is unreachable: every call raises
  :class:`~repro.exceptions.ShardUnavailableError` (a killed process);
* **fail-before-apply** -- the next N ingests raise *before* touching the
  inner shard (the request never arrived);
* **fail-after-apply** -- the next N ingests apply on the inner shard and
  *then* raise (the response was lost: the caller cannot know the write
  landed -- the nastiest window, where a retry would double-apply);
* **fail-N-then-heal** -- either of the above N times, then healthy again.

All failures surface as ``ShardUnavailableError`` carrying the shard id,
exactly what a :class:`~repro.cluster.protocol.RemoteShard` raises for a
dead transport, so the coordinator cannot tell the double from the real
thing.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping, Sequence
from typing import Any

from repro.cluster.protocol import ShardBackend
from repro.exceptions import ShardUnavailableError

__all__ = ["FlakyShard", "InjectedFault"]


class InjectedFault(Exception):
    """The scripted cause carried inside the raised ShardUnavailableError."""


class FlakyShard(ShardBackend):
    """A ShardBackend proxy with scripted failure points.

    The wrapper is intentionally *stateless about payloads*: it never
    buffers or replays -- whether a failed write reached the inner shard is
    decided solely by the scripted failure point, which is exactly the
    ambiguity the coordinator must survive.
    """

    def __init__(self, inner: ShardBackend) -> None:
        super().__init__(inner.shard_id)
        self.inner = inner
        self.down = False
        #: Fail only the snapshot path (a shard that serves cheap stats but
        #: cannot ship full state -- forces snapshot failover in isolation).
        self.snapshot_down = False
        self._fail_before = 0
        self._fail_after = 0
        self.calls: Counter = Counter()

    # ------------------------------------------------------------------
    # scripting
    # ------------------------------------------------------------------
    def fail_next_ingests(self, times: int = 1, *, when: str = "before") -> None:
        """Script the next ``times`` ingests to fail, then heal.

        ``when="before"`` fails without applying; ``when="after"`` applies
        on the inner shard first and then reports failure.
        """
        if when == "before":
            self._fail_before += int(times)
        elif when == "after":
            self._fail_after += int(times)
        else:
            raise ValueError(f"when must be 'before' or 'after', got {when!r}")

    def _unavailable(self, reason: str) -> ShardUnavailableError:
        return ShardUnavailableError(self.shard_id, InjectedFault(reason))

    def _gate(self, call: str) -> None:
        self.calls[call] += 1
        if self.down:
            raise self._unavailable("shard is down")

    # ------------------------------------------------------------------
    # ShardBackend protocol
    # ------------------------------------------------------------------
    def create(self, name: str, kind: str = "dc", **kwargs: Any) -> dict[str, Any]:
        self._gate("create")
        return self.inner.create(name, kind, **kwargs)

    def drop(self, name: str) -> None:
        self._gate("drop")
        self.inner.drop(name)

    def names(self) -> list[str]:
        self._gate("names")
        return self.inner.names()

    def ingest(
        self, name: str, insert: Sequence[float] = (), delete: Sequence[float] = ()
    ) -> dict[str, Any]:
        self._gate("ingest")
        if self._fail_before > 0:
            self._fail_before -= 1
            raise self._unavailable("scripted failure before apply")
        result = self.inner.ingest(name, insert=insert, delete=delete)
        if self._fail_after > 0:
            self._fail_after -= 1
            raise self._unavailable("scripted failure after apply (response lost)")
        return result

    def query(self, name: str, queries: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
        self._gate("query")
        return self.inner.query(name, queries)

    def stats(self, name: str) -> dict[str, Any]:
        self._gate("stats")
        return self.inner.stats(name)

    def stats_all(self) -> list[dict[str, Any]]:
        self._gate("stats_all")
        return self.inner.stats_all()

    def snapshot(self, name: str) -> dict[str, Any]:
        self._gate("snapshot")
        if self.snapshot_down:
            raise self._unavailable("snapshot path is down")
        return self.inner.snapshot(name)

    def restore(self, name: str, snapshot: Mapping[str, Any]) -> dict[str, Any]:
        self._gate("restore")
        return self.inner.restore(name, snapshot)

    def health(self) -> dict[str, Any]:
        self._gate("health")
        return self.inner.health()
