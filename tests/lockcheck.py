"""Dynamic lock-order race detector for the concurrency suites.

The static pass (``repro.analysis`` REP001/REP008) proves *lexical* lock
discipline; this monitor observes what actually happens at runtime.  While a
:class:`LockOrderMonitor` is active, every lock created through
``threading.Lock`` / ``threading.RLock`` is wrapped so that each acquisition
records, per thread, the set of locks already held.  Those observations form
a directed lock-order graph (edge ``A -> B`` means "B was acquired while A
was held").  At teardown the monitor fails on:

* **cycles** in the graph -- two code paths acquire the same locks in
  opposite orders, a potential deadlock even if this particular run got
  lucky with its interleaving;
* **blocking socket I/O performed while holding a tracked lock** -- a slow
  or dead peer would then stall every thread contending for that lock (the
  failover suites exist precisely because peers die).

Detection is graph-based, not schedule-based: a deliberate inversion is
caught even when the two acquisition orders are exercised sequentially by a
single thread pair, which keeps the seeded-regression test deterministic.

Locks created *before* the monitor starts are untracked by design: the
harness targets the store/cluster objects each test constructs, not
interpreter-internal locks.  Enable under pytest via the autouse fixture in
``conftest.py`` (concurrency modules only; opt out with
``REPRO_LOCKCHECK=0``).
"""

from __future__ import annotations

import itertools
import socket
import threading
import traceback
from typing import Any

_state_lock = threading.Lock()  # guards monitor bookkeeping, never wrapped

_ACTIVE: LockOrderMonitor | None = None


class _TrackedLock:
    """Wrapper around one ``threading.Lock``/``RLock`` instance.

    Forwards the full lock protocol (including the private condition-variable
    hooks ``_release_save`` / ``_acquire_restore`` / ``_is_owned`` so wrapped
    RLocks keep working inside ``threading.Condition``) while reporting
    acquisitions and releases to the monitor.  The wrapper stays functional
    after the monitor stops -- leftover daemon threads from a finished test
    must never crash on a stale lock.
    """

    def __init__(self, inner: Any, uid: int, reentrant: bool, site: str) -> None:
        self._inner = inner
        self._uid = uid
        self._reentrant = reentrant
        self._site = site

    # -- lock protocol -------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            monitor = _ACTIVE
            if monitor is not None:
                monitor._on_acquire(self)
        return acquired

    def release(self) -> None:
        monitor = _ACTIVE
        if monitor is not None:
            monitor._on_release(self)
        self._inner.release()

    __enter__ = acquire

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    # -- Condition-variable integration --------------------------------
    # threading.Condition duck-types on these three attributes, so they
    # must behave for BOTH flavours: delegate for RLock (which has them),
    # emulate Condition's own fallbacks for a plain Lock (e.g. the one
    # inside threading.Event).
    def _release_save(self) -> Any:
        monitor = _ACTIVE
        if monitor is not None:
            monitor._on_release(self, drop_all=True)
        if self._reentrant:
            return self._inner._release_save()
        self._inner.release()
        return None

    def _acquire_restore(self, saved: Any) -> None:
        if self._reentrant:
            self._inner._acquire_restore(saved)
        else:
            self._inner.acquire()
        monitor = _ACTIVE
        if monitor is not None:
            monitor._on_acquire(self)

    def _is_owned(self) -> bool:
        if self._reentrant:
            return self._inner._is_owned()
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TrackedLock #{self._uid} from {self._site}>"


class _MonitoredSocket(socket.socket):
    """socket.socket subclass that flags blocking calls made under a lock."""

    def _check(self, operation: str) -> None:
        monitor = _ACTIVE
        if monitor is not None:
            monitor._on_socket_io(operation)

    def connect(self, *args: Any) -> Any:
        self._check("connect")
        return super().connect(*args)

    def accept(self) -> Any:
        self._check("accept")
        return super().accept()

    def recv(self, *args: Any) -> Any:
        self._check("recv")
        return super().recv(*args)

    def recv_into(self, *args: Any, **kwargs: Any) -> Any:
        self._check("recv_into")
        return super().recv_into(*args, **kwargs)

    def send(self, *args: Any) -> Any:
        self._check("send")
        return super().send(*args)

    def sendall(self, *args: Any) -> Any:
        self._check("sendall")
        return super().sendall(*args)


class LockOrderMonitor:
    """Context manager that records the cross-thread lock-order graph."""

    def __init__(self) -> None:
        self._uids = itertools.count(1)
        #: uid -> creation-site string, for readable reports.
        self._sites: dict[int, str] = {}
        #: observed edges: (held_uid, acquired_uid) -> example site pair.
        self._edges: dict[tuple[int, int], tuple[str, str]] = {}
        #: per-thread stack of (uid, recursion_count).
        self._held = threading.local()
        #: socket-I/O-under-lock observations.
        self.io_violations: list[str] = []
        self._saved: dict[str, Any] = {}

    # -- monkeypatching ------------------------------------------------
    def __enter__(self) -> LockOrderMonitor:
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("a LockOrderMonitor is already active")
        self._saved = {
            "Lock": threading.Lock,
            "RLock": threading.RLock,
            "socket": socket.socket,
        }
        monitor = self

        def make_lock() -> _TrackedLock:
            return monitor._track(self._saved["Lock"](), reentrant=False)

        def make_rlock() -> _TrackedLock:
            return monitor._track(self._saved["RLock"](), reentrant=True)

        threading.Lock = make_lock  # type: ignore[assignment]
        threading.RLock = make_rlock  # type: ignore[assignment]
        socket.socket = _MonitoredSocket  # type: ignore[misc]
        _ACTIVE = self
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        global _ACTIVE
        _ACTIVE = None
        threading.Lock = self._saved["Lock"]  # type: ignore[assignment]
        threading.RLock = self._saved["RLock"]  # type: ignore[assignment]
        socket.socket = self._saved["socket"]  # type: ignore[misc]

    def _track(self, inner: Any, *, reentrant: bool) -> _TrackedLock:
        uid = next(self._uids)
        stack = traceback.extract_stack(limit=4)
        # Frame -3 is the caller of threading.Lock()/RLock(): the creation
        # site that makes cycle reports actionable.
        frame = stack[0] if len(stack) < 3 else stack[-3]
        site = f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno}"
        with _state_lock:
            self._sites[uid] = site
        return _TrackedLock(inner, uid, reentrant, site)

    # -- event sinks ---------------------------------------------------
    def _stack(self) -> list[list[int]]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def _on_acquire(self, lock: _TrackedLock) -> None:
        stack = self._stack()
        for entry in stack:
            if entry[0] == lock._uid:
                # RLock re-entry (or a second share of the same lock):
                # no new ordering information.
                entry[1] += 1
                return
        new_edges = [
            (entry[0], lock._uid) for entry in stack if entry[0] != lock._uid
        ]
        if new_edges:
            with _state_lock:
                for held_uid, acquired_uid in new_edges:
                    self._edges.setdefault(
                        (held_uid, acquired_uid),
                        (self._sites[held_uid], self._sites[acquired_uid]),
                    )
        stack.append([lock._uid, 1])

    def _on_release(self, lock: _TrackedLock, *, drop_all: bool = False) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] == lock._uid:
                if drop_all:
                    del stack[index]
                else:
                    stack[index][1] -= 1
                    if stack[index][1] == 0:
                        del stack[index]
                return

    def _on_socket_io(self, operation: str) -> None:
        stack = self._stack()
        if not stack:
            return
        with _state_lock:
            held = ", ".join(self._sites[entry[0]] for entry in stack)
        self.io_violations.append(
            f"blocking socket.{operation}() while holding lock(s) "
            f"created at [{held}] in thread {threading.current_thread().name}"
        )

    # -- analysis ------------------------------------------------------
    def cycles(self) -> list[list[str]]:
        """Cycles in the observed lock-order graph, as creation-site paths.

        Iterative DFS over lock *instances* (aggregating to creation sites
        would false-positive the sorted same-site acquisitions compaction
        performs on purpose).
        """
        with _state_lock:
            edges = dict(self._edges)
            sites = dict(self._sites)
        graph: dict[int, list[int]] = {}
        for held_uid, acquired_uid in edges:
            graph.setdefault(held_uid, []).append(acquired_uid)

        found: list[list[str]] = []
        color: dict[int, int] = {}  # 0 absent, 1 on stack, 2 done
        for start in graph:
            if color.get(start):
                continue
            path: list[int] = []
            work: list[tuple[int, int]] = [(start, 0)]
            while work:
                node, child_index = work.pop()
                if child_index == 0:
                    color[node] = 1
                    path.append(node)
                children = graph.get(node, [])
                advanced = False
                for position in range(child_index, len(children)):
                    child = children[position]
                    if color.get(child) == 1:
                        loop = path[path.index(child):] + [child]
                        found.append([sites[uid] for uid in loop])
                    elif not color.get(child):
                        work.append((node, position + 1))
                        work.append((child, 0))
                        advanced = True
                        break
                if not advanced:
                    color[node] = 2
                    path.pop()
        return found

    def report(self) -> list[str]:
        """Human-readable problem list; empty means the run was clean."""
        problems = [
            "lock-order cycle (potential deadlock): " + " -> ".join(cycle)
            for cycle in self.cycles()
        ]
        problems.extend(self.io_violations)
        return problems
