"""Tests for the observability layer: registry, tracing, accuracy telemetry.

Covers the PR-7 acceptance bar end to end:

* the metrics registry conserves counts under concurrent writers while
  scraping readers never observe a torn per-metric snapshot;
* a trace id entering the cluster edge is demonstrably propagated down to
  every shard HTTP request (coordinator -> RemoteShard -> StatisticsServer);
* ``GET /metrics`` serves well-formed Prometheus text on both server kinds;
* pipeline requeue/drop counters surface through the ``/stats`` route;
* client connect-retry telemetry lands in both ``transport_stats`` and the
  bound registry counters;
* the accuracy sampler reports near-zero selectivity error on an exact
  shadow and disables itself on overflow.

This module runs under the dynamic lock-order monitor (``LOCKCHECK_MODULES``
in conftest.py): any metric update that acquired a store lock, or blocked on
socket I/O while holding an obs lock, would fail these tests.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro import (
    ClusterClient,
    ClusterCoordinator,
    ClusterServer,
    HistogramStore,
    IngestPipeline,
    RemoteShard,
    StatisticsClient,
    StatisticsServer,
)
from repro.obs import (
    LATENCY_BUCKETS_S,
    TRACE_HEADER,
    AccuracySampler,
    MetricsRegistry,
    Trace,
    current_trace,
    new_trace_id,
    route_label,
    use_trace,
)

# ----------------------------------------------------------------------
# exposition parsing helpers
# ----------------------------------------------------------------------


def parse_samples(text: str) -> dict[str, float]:
    """Prometheus text -> {sample_name_with_labels: value}."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        samples[name] = float(value)
    return samples


def assert_not_torn(text: str) -> None:
    """Every histogram in a scrape must be internally consistent.

    The +Inf bucket is the running count by construction, so within one
    rendered snapshot it must equal the ``_count`` sample and the cumulative
    buckets must be monotone.  A torn scrape (values read mid-update) breaks
    one of these.
    """
    samples = parse_samples(text)
    for name, value in samples.items():
        if '_bucket{' not in name or 'le="+Inf"' not in name:
            continue
        base, _, labels = name.partition("_bucket{")
        pairs = [
            pair
            for pair in labels.rstrip("}").split(",")
            if pair and not pair.startswith("le=")
        ]
        count_key = base + "_count" + ("{" + ",".join(pairs) + "}" if pairs else "")
        assert samples[count_key] == value, (
            f"torn scrape: {name}={value} but {count_key}={samples[count_key]}"
        )


# ----------------------------------------------------------------------
# registry concurrency
# ----------------------------------------------------------------------


class TestRegistryConcurrency:
    WRITERS = 8
    INCREMENTS = 2000

    def test_writers_conserve_counts_and_scrapes_never_tear(self):
        registry = MetricsRegistry()
        counter = registry.counter("obs_test_events_total", "test counter")
        labelled = registry.counter(
            "obs_test_worker_events_total", "per-worker counter", labelnames=("worker",)
        )
        dist = registry.distribution(
            "obs_test_latency_seconds", "test histogram", buckets=LATENCY_BUCKETS_S
        )
        stop_scraping = threading.Event()
        scrape_errors: list[str] = []
        scrapes = 0

        def write(worker: int) -> None:
            for i in range(self.INCREMENTS):
                counter.inc()
                labelled.inc(worker=str(worker))
                dist.observe(1e-4 * ((i % 7) + 1))

        def scrape() -> None:
            nonlocal scrapes
            while not stop_scraping.is_set():
                text = registry.render()
                scrapes += 1
                try:
                    assert_not_torn(text)
                    total = parse_samples(text).get("obs_test_events_total", 0.0)
                    if total > self.WRITERS * self.INCREMENTS:
                        raise AssertionError(f"over-count mid-run: {total}")
                except AssertionError as error:  # pragma: no cover - failure path
                    scrape_errors.append(str(error))
                    return

        writers = [
            threading.Thread(target=write, args=(w,)) for w in range(self.WRITERS)
        ]
        readers = [threading.Thread(target=scrape) for _ in range(2)]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop_scraping.set()
        for thread in readers:
            thread.join()

        assert not scrape_errors, scrape_errors
        assert scrapes > 0
        expected = self.WRITERS * self.INCREMENTS
        assert counter.value() == expected
        for worker in range(self.WRITERS):
            assert labelled.value(worker=str(worker)) == self.INCREMENTS
        summary = dist.summary()
        assert summary["count"] == expected
        final = parse_samples(registry.render())
        assert final["obs_test_events_total"] == expected
        inf_key = 'obs_test_latency_seconds_bucket{le="+Inf"}'
        assert final[inf_key] == expected


# ----------------------------------------------------------------------
# trace context
# ----------------------------------------------------------------------


class TestTraceContext:
    def test_use_trace_activates_and_restores(self):
        assert current_trace() is None
        trace = Trace(new_trace_id())
        with use_trace(trace):
            assert current_trace() is trace
            with trace.span("inner"):
                pass
        assert current_trace() is None
        assert [span[0] for span in trace.spans()] == ["inner"]

    def test_route_label_collapses_cardinality(self):
        assert route_label(("attributes", "age", "estimate")) == (
            "/attributes/{name}/estimate"
        )
        assert route_label(("stats",)) == "/stats"
        assert route_label(("no", "such", "route", "x")) == "/other"


class TestTracePropagation:
    """A trace id at the cluster edge reaches every shard HTTP request."""

    def test_cluster_trace_id_reaches_shard_slow_log(self):
        shard_entries: list[dict] = []
        cluster_entries: list[dict] = []
        registry = MetricsRegistry()
        store_a, store_b = HistogramStore(), HistogramStore()
        with StatisticsServer(
            store_a, slow_request_ms=0.0, trace_sink=shard_entries.append
        ) as backend_a, StatisticsServer(
            store_b, slow_request_ms=0.0, trace_sink=shard_entries.append
        ) as backend_b:
            shards = [
                RemoteShard("shard-0", StatisticsClient(*backend_a.address)),
                RemoteShard("shard-1", StatisticsClient(*backend_b.address)),
            ]
            coordinator = ClusterCoordinator(shards, metrics=registry)
            with ClusterServer(
                coordinator,
                metrics=registry,
                slow_request_ms=0.0,
                trace_sink=cluster_entries.append,
            ) as front:
                client = ClusterClient(*front.address)
                client.create("age", "dc", memory_kb=0.5)
                client.ingest("age", insert=[float(v % 50) for v in range(500)])
                assert client.total_count("age") == pytest.approx(500.0)

        assert cluster_entries and shard_entries
        cluster_ids = {entry["trace_id"] for entry in cluster_entries}
        shard_ids = {entry["trace_id"] for entry in shard_entries}
        # Every shard-side request was made on behalf of a cluster request:
        # its trace id is one the cluster edge generated, not a fresh one.
        assert shard_ids <= cluster_ids
        assert shard_ids, "no shard request carried a cluster trace id"
        # Fan-out spans recorded under the same trace made it into the log.
        spanned = [entry for entry in cluster_entries if entry.get("spans")]
        assert any(
            span["name"].startswith(("fanout:", "shard:"))
            for entry in spanned
            for span in entry["spans"]
        )
        assert registry.get("repro_cluster_fanout_seconds") is not None

    def test_incoming_header_is_adopted_and_echoed(self):
        with StatisticsServer(HistogramStore(), trace=True) as server:
            host, port = server.address
            request = urllib.request.Request(
                f"http://{host}:{port}/health", headers={TRACE_HEADER: "deadbeef42"}
            )
            with urllib.request.urlopen(request) as response:
                assert response.headers[TRACE_HEADER] == "deadbeef42"
                assert json.loads(response.read())["status"] == "ok"


# ----------------------------------------------------------------------
# /metrics exposition + /stats pipeline counters
# ----------------------------------------------------------------------


class TestMetricsExposition:
    def test_service_metrics_route(self):
        registry = MetricsRegistry()
        store = HistogramStore(metrics=registry)
        pipeline = IngestPipeline(store, metrics=registry)
        with StatisticsServer(store, pipeline=pipeline, metrics=registry) as server:
            client = StatisticsClient(*server.address)
            client.create("age", "dc", memory_kb=0.5)
            response = client.ingest("age", insert=[float(v % 30) for v in range(300)])
            assert response["buffered"] is True
            pipeline.flush()
            client.total_count("age")
            text = client.metrics_text()
        assert text.endswith("\n")
        assert "# TYPE repro_store_op_seconds histogram" in text
        samples = parse_samples(text)
        assert samples['repro_store_mutations_total{attribute="age",op="insert"}'] == 300
        assert samples["repro_pipeline_flushed_values_total"] == 300
        assert samples['repro_http_requests_total{route="/attributes",status="201"}'] >= 1
        assert_not_torn(text)

    def test_metrics_route_404_without_registry(self):
        with StatisticsServer(HistogramStore()) as server:
            client = StatisticsClient(*server.address)
            from repro import ServiceError

            with pytest.raises(ServiceError):
                client.metrics_text()

    def test_stats_route_surfaces_requeue_and_drop_counters(self):
        store = HistogramStore()
        pipeline = IngestPipeline(store)
        with StatisticsServer(store, pipeline=pipeline) as server:
            client = StatisticsClient(*server.address)
            client.create("age", "dc", memory_kb=0.5)
            assert client.ingest("age", insert=[1.0, 2.0])["buffered"] is True
            pipeline.flush()
            stats = client.stats()
        assert stats["pipeline"]["requeued_values"] == 0
        assert stats["pipeline"]["dropped_values"] == 0
        assert stats["pipeline"]["flushed_values"] == 2


# ----------------------------------------------------------------------
# client transport telemetry
# ----------------------------------------------------------------------


class TestClientRetryTelemetry:
    def test_connect_retries_counted_in_stats_and_registry(self):
        registry = MetricsRegistry()
        # A fresh ephemeral port that nothing listens on: bind, note, close.
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        _, dead_port = probe.getsockname()
        probe.close()

        client = StatisticsClient(
            "127.0.0.1", dead_port, retries=2, retry_backoff=0.001
        )
        client.bind_metrics(registry)
        with pytest.raises(OSError):
            client.health()
        assert client.transport_stats["connect_retries"] == 3  # initial + 2 retries
        assert client.transport_stats["backoff_seconds"] > 0.0
        endpoint = f"127.0.0.1:{dead_port}"
        counter = registry.get("repro_client_connect_retries_total")
        assert counter.value(endpoint=endpoint) == 3


# ----------------------------------------------------------------------
# estimation-accuracy telemetry
# ----------------------------------------------------------------------


class TestAccuracySampler:
    def test_selectivity_error_near_zero_on_exact_shadow(self):
        registry = MetricsRegistry()
        sampler = AccuracySampler(registry, fraction=1.0)
        store = HistogramStore(metrics=registry, accuracy_sampler=sampler)
        store.create("age", "dc", memory_kb=1.0)
        values = [float(v % 40) for v in range(800)]
        store.insert("age", values)
        store.delete("age", [5.0, 6.0])
        response = store.query(
            "age",
            [
                {"op": "range", "low": 0.0, "high": 39.0},
                {"op": "total"},
                {"op": "selectivity", "low": 10.0, "high": 19.0},
            ],
        )
        assert response["results"][1] == pytest.approx(798.0)
        assert sampler.exact_total("age") == 798
        error = registry.get("repro_estimate_selectivity_error")
        summary = error.summary(attribute="age")
        assert summary["count"] == 3
        assert summary["max"] <= 0.02
        # One check per sampled query batch (three errors observed within it).
        checks = registry.get("repro_estimate_accuracy_checks_total")
        assert checks.value(attribute="age") == 1

    def test_overflow_disables_shadow(self):
        registry = MetricsRegistry()
        sampler = AccuracySampler(registry, fraction=1.0, max_values=10)
        store = HistogramStore(metrics=registry, accuracy_sampler=sampler)
        store.create("age", "dc", memory_kb=1.0)
        store.insert("age", [float(v) for v in range(50)])
        assert not sampler.enabled_for("age")
        disabled = registry.get("repro_estimate_accuracy_disabled_total")
        assert disabled.value() == 1
        # Disabled shadows never observe errors.
        store.query("age", [{"op": "total"}])
        error = registry.get("repro_estimate_selectivity_error")
        assert error.summary(attribute="age")["count"] == 0

    def test_fraction_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            AccuracySampler(registry, fraction=1.5)


# ----------------------------------------------------------------------
# exposition escaping + route-template edge cases (PR 8)
# ----------------------------------------------------------------------


class TestExpositionEscaping:
    """Label values must survive the Prometheus text format 0.0.4 rules:
    backslash, double quote and newline are escaped inside quoted values."""

    def _render_with_label(self, value: str) -> str:
        registry = MetricsRegistry()
        counter = registry.counter(
            "esc_total", "escaping probe", labelnames=("victim",)
        )
        counter.inc(1, victim=value)
        return registry.render()

    def test_backslash_is_doubled(self):
        text = self._render_with_label("a\\b")
        assert 'esc_total{victim="a\\\\b"} 1' in text

    def test_double_quote_is_escaped(self):
        text = self._render_with_label('say "hi"')
        assert 'esc_total{victim="say \\"hi\\""} 1' in text

    def test_newline_becomes_backslash_n(self):
        text = self._render_with_label("line1\nline2")
        assert 'esc_total{victim="line1\\nline2"} 1' in text
        # The rendered exposition must stay one-sample-per-line.
        for line in text.splitlines():
            assert line.startswith("#") or line.count('"') % 2 == 0

    def test_combined_hostile_value_renders_parseable(self):
        hostile = 'path\\to\n"thing"'
        text = self._render_with_label(hostile)
        sample_lines = [
            line for line in text.splitlines() if line.startswith("esc_total{")
        ]
        assert len(sample_lines) == 1
        line = sample_lines[0]
        assert "\n" not in line
        assert line.endswith(" 1")

    def test_distribution_labels_escape_in_every_suffix(self):
        registry = MetricsRegistry()
        dist = registry.distribution(
            "esc_seconds", "escaping probe", LATENCY_BUCKETS_S, labelnames=("who",)
        )
        dist.observe(0.001, who='evil"name')
        text = registry.render()
        for suffix in ("_bucket", "_count", "_sum"):
            assert f'esc_seconds{suffix}{{' in text
        assert 'who="evil\\"name"' in text
        # No raw (unescaped) quote sequence leaks through.
        assert 'who="evil"name"' not in text


class TestRouteLabelEdgeCases:
    """The route templater is the metrics layer's cardinality firewall."""

    def test_root_and_single_segments(self):
        assert route_label(()) == "/"
        assert route_label(("health",)) == "/health"
        assert route_label(("metrics",)) == "/metrics"
        assert route_label(("profile",)) == "/profile"

    def test_trailing_slash_equivalence(self):
        # The handlers split on "/" dropping empties, so a trailing slash
        # yields the same tuple; both spellings share one label.
        path_with = tuple(part for part in "/attributes/age/".split("/") if part)
        path_without = tuple(part for part in "/attributes/age".split("/") if part)
        assert route_label(path_with) == route_label(path_without) == "/attributes/{name}"

    def test_percent_encoded_name_segment_is_templated(self):
        # Handlers unquote before routing; whatever the name decodes to, it
        # must vanish into the {name} placeholder.
        from urllib.parse import unquote

        decoded = unquote("we%20ird%2Fname")
        assert route_label(("attributes", decoded, "ingest")) == (
            "/attributes/{name}/ingest"
        )

    def test_unknown_action_cannot_mint_labels(self):
        # Arbitrary third segments must not appear in the label value.
        for action in ("estimate2", "drop-all", "x" * 200, '"};evil'):
            assert route_label(("attributes", "age", action)) == "/other"

    def test_overlong_garbage_collapses(self):
        assert route_label(tuple("abcdefgh")) == "/other"
        assert route_label(("attributes", "a", "estimate", "extra")) == "/other"
        assert route_label(("shards", "shard-0", "explode")) == "/other"

    def test_shard_and_cluster_routes(self):
        assert route_label(("shards", "shard-1", "drain")) == "/shards/{id}/drain"
        assert route_label(("shards", "shard-1", "resync")) == "/shards/{id}/resync"
        assert route_label(("cluster", "stats")) == "/cluster/stats"
        assert route_label(("cluster", "ingest")) == "/cluster/ingest"
        assert route_label(("cluster", "explode")) == "/other"

    def test_heads_with_extra_segments_collapse(self):
        assert route_label(("health", "x")) == "/other"
        assert route_label(("metrics", "x")) == "/other"
