"""Tests for the cached vectorised segment view and the incremental hot paths.

The segment view must be observationally equivalent to the original
per-bucket Python loops on every histogram in the library, must be invalidated
by every mutation, and must fall back to the exact loops when the bucket list
violates the disjointness assumption of the O(log B) paths.
"""

import numpy as np
import pytest

from repro import Bucket, DADOHistogram, DCHistogram, DVOHistogram
from repro.static.base import StaticHistogram


# ----------------------------------------------------------------------
# reference implementations (the seed's per-bucket loops)
# ----------------------------------------------------------------------
def loop_total(histogram):
    return float(sum(bucket.count for bucket in histogram.buckets()))


def loop_estimate_range(histogram, low, high):
    if high < low:
        return 0.0
    return float(sum(bucket.count_in_range(low, high) for bucket in histogram.buckets()))


def loop_count_at_most(histogram, x):
    return float(sum(bucket.count_at_most(x) for bucket in histogram.buckets()))


def loop_cdf_many(histogram, xs, *, include_point_mass_at=True):
    xs_arr = np.asarray(xs, dtype=float)
    buckets = histogram.buckets()
    total = sum(bucket.count for bucket in buckets)
    if not buckets or total <= 0:
        return np.zeros(xs_arr.shape, dtype=float)
    cumulative = np.zeros(xs_arr.shape, dtype=float)
    for bucket in buckets:
        if bucket.is_point_mass:
            if include_point_mass_at:
                cumulative += np.where(xs_arr >= bucket.left, bucket.count, 0.0)
            else:
                cumulative += np.where(xs_arr > bucket.left, bucket.count, 0.0)
        else:
            fraction = np.clip((xs_arr - bucket.left) / bucket.width, 0.0, 1.0)
            cumulative += bucket.count * fraction
    return cumulative / total


def _dado_histogram(values):
    histogram = DADOHistogram(24)
    for value in values:
        histogram.insert(float(value))
    return histogram


# ----------------------------------------------------------------------
# equivalence with the per-bucket loops
# ----------------------------------------------------------------------
class TestViewEquivalence:
    @pytest.fixture(
        params=["static", "dado", "dc"],
    )
    def histogram(self, request, uniform_values):
        if request.param == "static":
            return StaticHistogram(
                [
                    Bucket(0.0, 10.0, 40.0),
                    Bucket(10.0, 20.0, 40.0),
                    Bucket(20.0, 20.0, 5.0),
                    Bucket(25.0, 25.0, 20.0),
                    Bucket(30.0, 50.0, 15.0),
                ]
            )
        if request.param == "dado":
            return _dado_histogram(uniform_values)
        histogram = DCHistogram(32)
        histogram.insert_many(float(v) for v in uniform_values)
        return histogram

    def test_fast_path_is_active(self, histogram):
        assert histogram.segment_view().fast

    def test_total_count(self, histogram):
        assert histogram.total_count == pytest.approx(loop_total(histogram), rel=1e-12)

    def test_estimate_range(self, histogram, rng):
        lows = rng.uniform(-10, 60, size=200)
        widths = rng.uniform(0, 40, size=200)
        for low, width in zip(lows, widths, strict=True):
            assert histogram.estimate_range(low, low + width) == pytest.approx(
                loop_estimate_range(histogram, low, low + width), rel=1e-9, abs=1e-9
            )

    def test_estimate_ranges_batch_matches_scalar(self, histogram, rng):
        lows = rng.uniform(-10, 60, size=100)
        highs = lows + rng.uniform(-5, 40, size=100)
        batch = histogram.estimate_ranges(lows, highs)
        for low, high, estimate in zip(lows, highs, batch, strict=True):
            assert estimate == pytest.approx(
                histogram.estimate_range(low, high), rel=1e-12, abs=1e-12
            )

    def test_count_at_most(self, histogram, rng):
        for x in rng.uniform(-10, 60, size=200):
            assert histogram.count_at_most(x) == pytest.approx(
                loop_count_at_most(histogram, x), rel=1e-9, abs=1e-9
            )

    def test_cdf_many_both_sides(self, histogram):
        xs = np.linspace(-10, 260, 400)
        np.testing.assert_allclose(
            histogram.cdf_many(xs), loop_cdf_many(histogram, xs), rtol=1e-9, atol=1e-12
        )
        np.testing.assert_allclose(
            histogram.cdf_left_many(xs),
            loop_cdf_many(histogram, xs, include_point_mass_at=False),
            rtol=1e-9,
            atol=1e-12,
        )

    def test_queries_exactly_on_borders(self, histogram):
        view = histogram.segment_view()
        borders = np.concatenate((view.reg_lefts, view.reg_rights, view.pm_values))
        for x in borders:
            assert histogram.count_at_most(float(x)) == pytest.approx(
                loop_count_at_most(histogram, float(x)), rel=1e-9, abs=1e-9
            )


# ----------------------------------------------------------------------
# cache invalidation
# ----------------------------------------------------------------------
class TestViewInvalidation:
    def test_view_is_cached_between_reads(self, uniform_values):
        histogram = _dado_histogram(uniform_values)
        assert histogram.segment_view() is histogram.segment_view()

    def test_insert_invalidates(self, uniform_values):
        histogram = _dado_histogram(uniform_values)
        before = histogram.segment_view()
        total_before = histogram.total_count
        histogram.insert(42.0)
        assert histogram.segment_view() is not before
        assert histogram.total_count == pytest.approx(total_before + 1.0)

    def test_delete_invalidates(self, uniform_values):
        histogram = _dado_histogram(uniform_values)
        total_before = histogram.total_count
        histogram.delete(float(uniform_values[0]))
        assert histogram.total_count == pytest.approx(total_before - 1.0)

    def test_insert_many_and_apply_invalidate(self, uniform_values):
        from repro import UpdateStream

        histogram = DCHistogram(32)
        histogram.insert_many(float(v) for v in uniform_values[:200])
        assert histogram.total_count == pytest.approx(200.0, abs=1e-6)
        histogram.apply(UpdateStream.inserts(float(v) for v in uniform_values[200:300]))
        assert histogram.total_count == pytest.approx(300.0, abs=1e-6)

    def test_bootstrap_from_read_path_invalidates(self):
        histogram = DADOHistogram(8)
        for value in [1.0, 5.0, 9.0]:
            histogram.insert(value)
        assert histogram.total_count == pytest.approx(3.0)
        assert histogram.is_loading
        histogram.sub_bucketed_buckets()  # forces the bootstrap
        assert not histogram.is_loading
        assert histogram.total_count == pytest.approx(3.0)


# ----------------------------------------------------------------------
# fallback path for non-disjoint bucket lists
# ----------------------------------------------------------------------
class TestFallback:
    def _overlapping_histogram(self):
        return StaticHistogram(
            [Bucket(0.0, 10.0, 30.0), Bucket(5.0, 15.0, 30.0), Bucket(12.0, 20.0, 40.0)]
        )

    def test_overlap_disables_fast_path(self):
        histogram = self._overlapping_histogram()
        assert not histogram.segment_view().fast

    def test_fallback_matches_loops(self):
        histogram = self._overlapping_histogram()
        assert histogram.total_count == pytest.approx(100.0)
        for low, high in [(-1.0, 7.0), (5.0, 12.0), (0.0, 20.0), (13.0, 30.0)]:
            assert histogram.estimate_range(low, high) == pytest.approx(
                loop_estimate_range(histogram, low, high)
            )
            assert histogram.count_at_most(high) == pytest.approx(
                loop_count_at_most(histogram, high)
            )
        xs = np.linspace(-2, 25, 100)
        np.testing.assert_allclose(
            histogram.cdf_many(xs), loop_cdf_many(histogram, xs), rtol=1e-9
        )


# ----------------------------------------------------------------------
# DVO insert_many fast path
# ----------------------------------------------------------------------
class TestDVOInsertMany:
    def test_default_interval_matches_sequential_inserts(self, uniform_values):
        sequential = DVOHistogram(16)
        for value in uniform_values:
            sequential.insert(float(value))
        batched = DVOHistogram(16)
        batched.insert_many(float(v) for v in uniform_values)
        seq_buckets = [(b.left, b.right, b.count) for b in sequential.buckets()]
        bat_buckets = [(b.left, b.right, b.count) for b in batched.buckets()]
        assert seq_buckets == bat_buckets
        assert sequential.repartition_count == batched.repartition_count

    @pytest.mark.parametrize("interval", [4, 64])
    def test_batched_interval_conserves_count(self, interval, uniform_values):
        histogram = DADOHistogram(16)
        histogram.insert_many(
            (float(v) for v in uniform_values), repartition_interval=interval
        )
        assert histogram.total_count == pytest.approx(len(uniform_values), rel=1e-9)
        assert len(histogram.bucket_array) <= histogram.bucket_budget

    def test_invalid_interval_rejected(self):
        histogram = DADOHistogram(8)
        with pytest.raises(Exception):
            histogram.insert_many([1.0], repartition_interval=0)
