"""Tests for the ablation-matrix benchmark harness (``benchmarks/matrix.py``).

The matrix is a script, not a package module, so it is loaded via importlib
with the benchmarks directory on ``sys.path`` (its cells import the other
bench scripts the same way the script itself does).

Covers:

* micro end-to-end runs of one cell per runner kind (histogram / service /
  cluster-scaling / replication-factor) at tiny sizes;
* schema and fingerprint stamping of the emitted report;
* the regression gate: pass on identical data, **exit non-zero with the
  offending cell named in the delta table on an injected 2x slowdown** (the
  PR's acceptance criterion), auto-skip with a visible notice on fingerprint
  mismatch and on smoke-flag mismatch;
* derived-ratio wiring and the delta-table formatter.
"""

from __future__ import annotations

import copy
import importlib.util
import json
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BENCHMARKS = REPO_ROOT / "benchmarks"


@pytest.fixture(scope="module")
def matrix():
    sys.path.insert(0, str(BENCHMARKS))
    try:
        spec = importlib.util.spec_from_file_location("matrix", BENCHMARKS / "matrix.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.path.remove(str(BENCHMARKS))


#: Tiny sizes: the tests exercise the cell plumbing, not the numbers.
MICRO_SIZES = {
    "hist_values": 2_000,
    "service_values": 600,
    "cluster_calls": 2,
    "catalog_chunk": 16,
    "hot_chunk": 32,
    "cluster_writers": 1,
    "cluster_readers": 1,
    "rf_calls": 2,
    "rf_chunk": 32,
    "repeats": 1,
}

#: One representative cell per runner kind.
MICRO_CELLS = ["hist_dc", "wal_on", "shards_2", "rf_2"]


@pytest.fixture(scope="module")
def micro_report(matrix):
    return matrix.run_matrix(smoke=True, cells=MICRO_CELLS, sizes=MICRO_SIZES)


class TestMatrixCells:
    def test_every_runner_kind_produces_a_cell(self, matrix, micro_report):
        cells = micro_report["cells"]
        assert set(cells) == set(MICRO_CELLS)
        kinds = {matrix.CELLS[name]["kind"] for name in cells}
        assert kinds == {"histogram", "service", "cluster_scaling", "cluster_rf"}
        for name, cell in cells.items():
            assert cell["ops_per_sec"] > 0, name
            assert "latency_p99_s" in cell, name
            assert cell["phases"]["run"]["count"] == 1, name

    def test_report_is_schema_versioned_and_fingerprinted(self, matrix, micro_report):
        assert micro_report["schema_version"] == matrix.SCHEMA_VERSION
        fingerprint = micro_report["fingerprint"]
        assert set(fingerprint) == {"python", "numpy", "cpu_count"}
        assert micro_report["fingerprint_id"] == matrix.fingerprint_id(fingerprint)
        json.dumps(micro_report)  # must be JSON-serialisable as-is

    def test_cell_detail_records_its_knob(self, matrix, micro_report):
        assert micro_report["cells"]["wal_on"]["detail"]["wal"] == "on"
        assert micro_report["cells"]["shards_2"]["detail"]["shards"] == 2
        assert micro_report["cells"]["rf_2"]["detail"]["replication_factor"] == 2

    def test_profile_flag_embeds_attribution(self, matrix):
        report = matrix.run_matrix(
            smoke=True, profile=True, cells=["hist_dc"], sizes=MICRO_SIZES
        )
        profile = report["cells"]["hist_dc"]["profile"]
        assert profile["samples"] >= 0
        assert "hot_stacks" in profile

    def test_unknown_cell_is_rejected(self, matrix):
        with pytest.raises(SystemExit):
            matrix.run_matrix(smoke=True, cells=["no_such_cell"], sizes=MICRO_SIZES)

    def test_derived_ratios_reference_real_cells(self, matrix):
        for numerator, denominator in matrix.DERIVED.values():
            assert numerator in matrix.CELLS
            assert denominator in matrix.CELLS


class TestGate:
    def test_identical_reports_pass(self, matrix, micro_report):
        rows, failures = matrix.gate_compare(micro_report, micro_report)
        assert failures == []
        assert all(row["status"] == "ok" for row in rows)

    def test_injected_2x_slowdown_fails_and_names_the_cell(
        self, matrix, micro_report
    ):
        """Acceptance criterion: halving one cell's throughput (a simulated
        2x slowdown) must fail the gate and name that cell in the table."""
        slowed = copy.deepcopy(micro_report)
        slowed["cells"]["wal_on"]["ops_per_sec"] = (
            micro_report["cells"]["wal_on"]["ops_per_sec"] / 2.0
        )
        rows, failures = matrix.gate_compare(slowed, micro_report)
        assert any("wal_on" in failure for failure in failures), failures
        table = matrix.format_delta_table(rows)
        failing_lines = [line for line in table.splitlines() if "FAIL" in line]
        assert any("wal_on" in line for line in failing_lines), table
        # Other cells stay green: the gate localises the regression.
        assert not any("hist_dc" in failure for failure in failures)

    def test_missing_cell_is_a_regression(self, matrix, micro_report):
        shrunk = copy.deepcopy(micro_report)
        del shrunk["cells"]["rf_2"]
        _, failures = matrix.gate_compare(shrunk, micro_report)
        assert any("rf_2" in failure and "missing" in failure for failure in failures)

    def test_latency_blowup_fails(self, matrix, micro_report):
        slow = copy.deepcopy(micro_report)
        base_p99 = max(micro_report["cells"]["shards_2"]["latency_p99_s"], 0.005)
        slow["cells"]["shards_2"]["latency_p99_s"] = base_p99 * 10.0
        _, failures = matrix.gate_compare(slow, micro_report)
        assert any(
            "shards_2" in failure and "latency_p99_s" in failure
            for failure in failures
        )

    def test_sub_floor_latencies_carry_no_signal(self, matrix, micro_report):
        """Latencies below the noise floor never fail the gate, whatever
        their ratio (0.001 -> 0.004 is a 4x blowup of nothing)."""
        current = copy.deepcopy(micro_report)
        baseline = copy.deepcopy(micro_report)
        baseline["cells"]["hist_dc"]["latency_p99_s"] = 0.0005
        current["cells"]["hist_dc"]["latency_p99_s"] = 0.004
        _, failures = matrix.gate_compare(current, baseline)
        assert not any("hist_dc" in failure for failure in failures)

    def test_run_gate_exit_codes(self, matrix, micro_report, tmp_path, capsys):
        baseline_dir = tmp_path / "baselines"
        baseline_dir.mkdir()
        path = baseline_dir / f"{micro_report['fingerprint_id']}.json"
        path.write_text(json.dumps(micro_report), encoding="utf-8")
        assert matrix.run_gate(micro_report, baseline_dir) == 0
        slowed = copy.deepcopy(micro_report)
        slowed["cells"]["hist_dc"]["ops_per_sec"] /= 2.0
        assert matrix.run_gate(slowed, baseline_dir) == 1
        err = capsys.readouterr().err
        assert "hist_dc" in err and "GATE FAILED" in err

    def test_gate_skips_visibly_on_fingerprint_mismatch(
        self, matrix, micro_report, tmp_path, capsys
    ):
        foreign = copy.deepcopy(micro_report)
        foreign["fingerprint_id"] = "py0.0.0-np0.0.0-cpu999"
        assert matrix.run_gate(foreign, tmp_path) == 0
        assert "GATE SKIPPED" in capsys.readouterr().err

    def test_gate_skips_on_smoke_mismatch(
        self, matrix, micro_report, tmp_path, capsys
    ):
        baseline = copy.deepcopy(micro_report)
        baseline["smoke"] = False
        path = tmp_path / f"{micro_report['fingerprint_id']}.json"
        path.write_text(json.dumps(baseline), encoding="utf-8")
        assert matrix.run_gate(micro_report, tmp_path) == 0
        assert "smoke" in capsys.readouterr().err

    def test_gate_skips_on_schema_mismatch(
        self, matrix, micro_report, tmp_path, capsys
    ):
        baseline = copy.deepcopy(micro_report)
        baseline["schema_version"] = -1
        path = tmp_path / f"{micro_report['fingerprint_id']}.json"
        path.write_text(json.dumps(baseline), encoding="utf-8")
        assert matrix.run_gate(micro_report, tmp_path) == 0
        assert "GATE SKIPPED" in capsys.readouterr().err


class TestCommittedBaseline:
    def test_committed_baseline_matches_this_host_or_is_absent(self, matrix):
        """The committed baseline (when present for this fingerprint) must be
        schema-current and smoke-shaped -- i.e. actually usable by CI."""
        path = BENCHMARKS / "baselines" / f"{matrix.fingerprint_id()}.json"
        if not path.exists():
            pytest.skip("no committed baseline for this host fingerprint")
        baseline = json.loads(path.read_text(encoding="utf-8"))
        assert baseline["schema_version"] == matrix.SCHEMA_VERSION
        assert baseline["smoke"] is True
        assert set(baseline["cells"]) == set(matrix.CELLS)
