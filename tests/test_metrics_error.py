"""Unit tests for the average relative range-query error (Eq. 7)."""

import pytest

from repro import (
    DataDistribution,
    EquiDepthHistogram,
    ExactHistogram,
    average_relative_error,
)
from repro.workloads import uniform_range_queries


def _queries_as_tuples(queries):
    return [q.as_tuple() for q in queries]


class TestAverageRelativeError:
    def test_exact_histogram_has_zero_error(self, small_distribution):
        histogram = ExactHistogram.build(small_distribution)
        queries = _queries_as_tuples(
            uniform_range_queries((0, 1000), 50, seed=1)
        )
        assert average_relative_error(small_distribution, histogram, queries) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_error_is_non_negative_and_finite(self, small_distribution):
        histogram = EquiDepthHistogram.build(small_distribution, 8)
        queries = _queries_as_tuples(uniform_range_queries((0, 1000), 100, seed=2))
        error = average_relative_error(small_distribution, histogram, queries)
        assert error >= 0.0
        assert error < 1e6

    def test_more_buckets_reduce_error(self, small_distribution):
        queries = _queries_as_tuples(uniform_range_queries((0, 1000), 200, seed=3))
        coarse = EquiDepthHistogram.build(small_distribution, 4)
        fine = EquiDepthHistogram.build(small_distribution, 64)
        assert average_relative_error(
            small_distribution, fine, queries
        ) <= average_relative_error(small_distribution, coarse, queries) + 1e-9

    def test_inverted_query_bounds_are_normalised(self):
        truth = DataDistribution([1, 2, 3, 4, 5])
        histogram = ExactHistogram.build(truth)
        assert average_relative_error(truth, histogram, [(4, 2)]) == pytest.approx(0.0)

    def test_empty_query_list_raises(self, small_distribution):
        histogram = EquiDepthHistogram.build(small_distribution, 8)
        with pytest.raises(ValueError):
            average_relative_error(small_distribution, histogram, [])

    def test_minimum_true_size_guard(self):
        truth = DataDistribution([100, 200])
        histogram = EquiDepthHistogram.build(truth, 2)
        # Query over an empty region: the error is normalised by the floor.
        error = average_relative_error(truth, histogram, [(300, 400)], minimum_true_size=1.0)
        assert error >= 0.0
        with pytest.raises(ValueError):
            average_relative_error(truth, histogram, [(300, 400)], minimum_true_size=0.0)
