"""Unit tests for the exact DataDistribution representation."""

import numpy as np
import pytest

from repro import DataDistribution
from repro.exceptions import DeletionError, EmptyHistogramError


class TestConstruction:
    def test_empty_distribution(self):
        dist = DataDistribution()
        assert dist.total_count == 0
        assert dist.distinct_count == 0
        assert not dist
        assert len(dist) == 0

    def test_from_values_accumulates_duplicates(self):
        dist = DataDistribution([1, 2, 2, 3, 3, 3])
        assert dist.total_count == 6
        assert dist.distinct_count == 3
        assert dist.frequency(3) == 3
        assert dist.frequency(99) == 0

    def test_from_frequencies(self):
        dist = DataDistribution.from_frequencies([(5, 2), (7, 4)])
        assert dist.total_count == 6
        assert dist.frequency(5) == 2
        assert dist.frequency(7) == 4

    def test_from_frequencies_ignores_zero_counts(self):
        dist = DataDistribution.from_frequencies([(5, 0), (7, 1)])
        assert dist.distinct_count == 1

    def test_from_frequencies_rejects_negative(self):
        with pytest.raises(ValueError):
            DataDistribution.from_frequencies([(5, -1)])

    def test_copy_is_independent(self):
        original = DataDistribution([1, 2, 3])
        clone = original.copy()
        clone.add(4)
        assert original.total_count == 3
        assert clone.total_count == 4
        assert original == DataDistribution([1, 2, 3])


class TestUpdates:
    def test_add_and_remove_round_trip(self):
        dist = DataDistribution()
        dist.add(10, 3)
        dist.remove(10, 2)
        assert dist.frequency(10) == 1
        dist.remove(10)
        assert dist.frequency(10) == 0
        assert 10 not in dist

    def test_add_rejects_non_positive_count(self):
        dist = DataDistribution()
        with pytest.raises(ValueError):
            dist.add(1, 0)

    def test_remove_missing_value_raises(self):
        dist = DataDistribution([1])
        with pytest.raises(DeletionError):
            dist.remove(2)

    def test_remove_more_than_present_raises(self):
        dist = DataDistribution([1, 1])
        with pytest.raises(DeletionError):
            dist.remove(1, 3)

    def test_add_many(self):
        dist = DataDistribution()
        dist.add_many([1, 1, 2])
        assert dist.total_count == 3
        assert dist.frequency(1) == 2


class TestAccessors:
    def test_min_max(self):
        dist = DataDistribution([5, 1, 9])
        assert dist.min_value == 1
        assert dist.max_value == 9

    def test_min_on_empty_raises(self):
        with pytest.raises(EmptyHistogramError):
            DataDistribution().min_value

    def test_iteration_is_sorted(self):
        dist = DataDistribution([5, 1, 9, 1])
        assert list(dist) == [1.0, 5.0, 9.0]

    def test_values_and_frequencies_aligned(self):
        dist = DataDistribution([3, 3, 1, 2])
        np.testing.assert_array_equal(dist.values, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(dist.frequencies, [1.0, 1.0, 2.0])

    def test_to_pairs(self):
        dist = DataDistribution([3, 3, 1])
        assert dist.to_pairs() == [(1.0, 1), (3.0, 2)]

    def test_expand_reconstructs_multiset(self):
        dist = DataDistribution([4, 4, 7])
        np.testing.assert_array_equal(dist.expand(), [4.0, 4.0, 7.0])

    def test_equality(self):
        assert DataDistribution([1, 2]) == DataDistribution([2, 1])
        assert DataDistribution([1]) != DataDistribution([1, 1])


class TestCDF:
    def test_cdf_basic_steps(self):
        dist = DataDistribution([1, 2, 3, 4])
        assert dist.cdf(0.5) == 0.0
        assert dist.cdf(1) == 0.25
        assert dist.cdf(2.5) == 0.5
        assert dist.cdf(4) == 1.0
        assert dist.cdf(100) == 1.0

    def test_cdf_empty_is_zero(self):
        assert DataDistribution().cdf(3) == 0.0

    def test_cdf_many_matches_scalar(self):
        dist = DataDistribution([1, 5, 5, 9])
        xs = [0, 1, 4, 5, 9, 10]
        expected = [dist.cdf(x) for x in xs]
        np.testing.assert_allclose(dist.cdf_many(xs), expected)

    def test_count_at_most(self):
        dist = DataDistribution([1, 5, 5, 9])
        assert dist.count_at_most(5) == 3
        assert dist.count_at_most(0) == 0

    def test_range_count_closed(self):
        dist = DataDistribution([1, 2, 3, 4, 5])
        assert dist.range_count(2, 4) == 3
        assert dist.range_count(2, 4, include_low=False) == 2
        assert dist.range_count(2, 4, include_high=False) == 2
        assert dist.range_count(4, 2) == 0

    def test_range_selectivity(self):
        dist = DataDistribution([1, 2, 3, 4])
        assert dist.range_selectivity(1, 2) == 0.5
        assert DataDistribution().range_selectivity(0, 10) == 0.0

    def test_breakpoints(self):
        dist = DataDistribution([2, 7, 2])
        np.testing.assert_array_equal(dist.breakpoints(), [2.0, 7.0])
