"""Unit tests for the memory model (Sections 3.1 and 4.4)."""

import pytest

from repro import MemoryModel, buckets_for_memory
from repro.exceptions import ConfigurationError


class TestBucketBudgets:
    def test_paper_1kb_budgets(self):
        model = MemoryModel()
        # (n + 1) * 4 + n * 4 <= 1024  =>  n = 127 for single-counter buckets.
        assert model.buckets_for_kb("dc", 1.0) == 127
        assert model.buckets_for_kb("sc", 1.0) == 127
        # (n + 1) * 4 + 2n * 4 <= 1024  =>  n = 85 for DADO / DVO buckets.
        assert model.buckets_for_kb("dado", 1.0) == 85
        assert model.buckets_for_kb("dvo", 1.0) == 85

    def test_dado_buckets_cost_more_than_dc_buckets(self):
        model = MemoryModel()
        for memory_kb in (0.14, 0.5, 1.0, 4.0):
            assert model.buckets_for_kb("dado", memory_kb) < model.buckets_for_kb("dc", memory_kb)

    def test_bytes_round_trip(self):
        model = MemoryModel()
        for kind in ("dc", "dado"):
            n_buckets = model.buckets_for_kb(kind, 1.0)
            used = model.bytes_for_buckets(kind, n_buckets)
            assert used <= 1024
            assert model.bytes_for_buckets(kind, n_buckets + 1) > 1024

    def test_case_insensitive_kinds(self):
        model = MemoryModel()
        assert model.buckets_for_kb("DC", 1.0) == model.buckets_for_kb("dc", 1.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryModel().buckets_for_kb("tdigest", 1.0)

    def test_too_small_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryModel().buckets_for_kb("dc", 0.005)

    def test_non_positive_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryModel().buckets_for_kb("dc", 0.0)

    def test_module_level_helper(self):
        assert buckets_for_memory("dc", 1.0) == 127


class TestBackingSampleBudget:
    def test_paper_default_20x(self):
        model = MemoryModel()
        # 20 KB of disk at 4 bytes per value = 5120 sampled tuples.
        assert model.backing_sample_size(1.0, 20.0) == 5120

    def test_scales_linearly_with_factor(self):
        model = MemoryModel()
        assert model.backing_sample_size(1.0, 40.0) == 2 * model.backing_sample_size(1.0, 20.0)

    def test_too_small_disk_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryModel().backing_sample_size(0.0005, 1.0)


class TestModelValidation:
    def test_invalid_byte_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryModel(bytes_per_border=0)
        with pytest.raises(ConfigurationError):
            MemoryModel(bytes_per_counter=-4)

    def test_custom_byte_sizes(self):
        wide = MemoryModel(bytes_per_border=8, bytes_per_counter=8)
        assert wide.buckets_for_kb("dc", 1.0) < MemoryModel().buckets_for_kb("dc", 1.0)
