"""Property tests for the cluster merge cache (mirrors the spliced-cache guard).

The coordinator caches the merged global histogram of a range-partitioned
attribute under the sum of the piece shards' generation counters.  The
invariant (the cluster analogue of ``test_properties.py``'s spliced-cache
guard): after ANY interleaving of shard writes and cache-populating queries,
the histogram the cache serves is bit-identical to a from-scratch
superimpose + reduce over the current piece snapshots.  Since the merge
became incremental (per-piece snapshots retained, only moved pieces
re-fetched), the same property also pins the incremental path: whatever mix
of full rebuilds, cache hits, and partial re-fetches an interleaving causes,
the served histogram may never drift from the from-scratch answer.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterCoordinator, LocalShard
from repro.distributed.union import reduce_segments, superimpose
from repro.persistence import histogram_from_dict

# Hypothesis soak over cluster write interleavings: excluded from the tier-1
# run (pytest.ini), exercised by the scheduled slow-suite CI job.
pytestmark = pytest.mark.slow

BOUNDARIES = [100.0, 200.0, 300.0]
GLOBAL_BUCKETS = 12

# Each write op: an insert batch of values spread anywhere over the domain
# (so any subset of pieces may be hit), or a single-value delete.
write_op = st.one_of(
    st.lists(
        st.floats(min_value=0.0, max_value=400.0, allow_nan=False, width=32),
        min_size=1,
        max_size=20,
    ),
    st.none(),  # None = query checkpoint (populate + verify the cache)
)


def buckets_of(histogram):
    return [(b.left, b.right, b.count) for b in histogram.buckets()]


def from_scratch_merge(coordinator, name):
    partition = coordinator.router.partition_for(name)
    members = [
        histogram_from_dict(dict(coordinator.shard(sid).snapshot(name)["histogram"]))
        for sid in partition.piece_shard_ids
    ]
    return reduce_segments(superimpose(members), GLOBAL_BUCKETS)


@settings(max_examples=30, deadline=None)
@given(st.lists(write_op, min_size=1, max_size=12))
def test_cached_merge_always_equals_from_scratch_rebuild(ops):
    coordinator = ClusterCoordinator(
        [LocalShard(f"shard-{i}") for i in range(3)], global_buckets=GLOBAL_BUCKETS
    )
    try:
        coordinator.create("hot", "dc", memory_kb=0.5, partition_boundaries=BOUNDARIES)
        inserted = []
        for op in ops:
            if op is None:
                cached = coordinator.merged_histogram("hot")
                assert buckets_of(cached) == buckets_of(from_scratch_merge(coordinator, "hot"))
            else:
                coordinator.ingest("hot", insert=op)
                inserted.extend(op)
        # Final checkpoint: the cache (whatever mix of hits and rebuilds it
        # went through) must equal the from-scratch merge, and conserve mass.
        final = coordinator.merged_histogram("hot")
        assert buckets_of(final) == buckets_of(from_scratch_merge(coordinator, "hot"))
        assert abs(final.total_count - len(inserted)) <= 1e-6 * max(1, len(inserted))
    finally:
        coordinator.close()


class CountingShard(LocalShard):
    """A LocalShard that counts piece-snapshot fetches."""

    def __init__(self, shard_id):
        super().__init__(shard_id)
        self.snapshot_calls = 0

    def snapshot(self, name):
        self.snapshot_calls += 1
        return super().snapshot(name)


def test_incremental_merge_refetches_only_moved_pieces():
    """The merge cache retains unmoved pieces and re-fetches only moved ones."""
    shards = [CountingShard(f"shard-{i}") for i in range(4)]
    coordinator = ClusterCoordinator(shards, global_buckets=GLOBAL_BUCKETS)
    by_id = {shard.shard_id: shard for shard in shards}
    try:
        coordinator.create("hot", "dc", memory_kb=0.5, partition_boundaries=BOUNDARIES)
        coordinator.ingest("hot", insert=[50.0, 150.0, 250.0, 350.0])
        coordinator.merged_histogram("hot")
        baseline = {shard.shard_id: shard.snapshot_calls for shard in shards}

        # No writes since the rebuild: a pure cache hit, zero fetches.
        coordinator.merged_histogram("hot")
        assert {s.shard_id: s.snapshot_calls for s in shards} == baseline

        # Move exactly ONE piece (both values inside the first piece's
        # range): the next merge must re-fetch only that piece's shard and
        # reuse every retained member for the others.
        partition = coordinator.router.partition_for("hot")
        moved_shard = partition.piece_shard_ids[0]
        coordinator.ingest("hot", insert=[10.0, 20.0])
        coordinator.merged_histogram("hot")
        expected = {
            shard_id: count + (1 if shard_id == moved_shard else 0)
            for shard_id, count in baseline.items()
        }
        assert {s.shard_id: s.snapshot_calls for s in shards} == expected
        assert by_id[moved_shard].snapshot_calls == baseline[moved_shard] + 1

        # And the incrementally maintained merge is still bit-identical to a
        # from-scratch superimpose + reduce over current piece snapshots.
        assert buckets_of(coordinator.merged_histogram("hot")) == buckets_of(
            from_scratch_merge(coordinator, "hot")
        )
    finally:
        coordinator.close()


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=400.0, allow_nan=False, width=32),
        min_size=0,
        max_size=40,
    )
)
def test_merged_total_equals_sum_of_piece_totals(values):
    coordinator = ClusterCoordinator(
        [LocalShard(f"shard-{i}") for i in range(3)], global_buckets=GLOBAL_BUCKETS
    )
    try:
        coordinator.create("hot", "dc", memory_kb=0.5, partition_boundaries=BOUNDARIES)
        if values:
            coordinator.ingest("hot", insert=values)
        partition = coordinator.router.partition_for("hot")
        piece_total = sum(
            coordinator.shard(sid).store.total_count("hot")
            for sid in partition.piece_shard_ids
        )
        assert abs(coordinator.total_count("hot") - piece_total) <= 1e-6 * max(1.0, piece_total)
    finally:
        coordinator.close()
