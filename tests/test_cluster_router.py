"""Unit tests for deterministic cluster placement (ShardRouter / RangePartition)."""

import numpy as np
import pytest

from repro import ClusterError, ConfigurationError
from repro.cluster import RangePartition, ShardRouter


SHARDS = ["shard-0", "shard-1", "shard-2", "shard-3"]


class TestConsistentHashing:
    def test_placement_is_deterministic_across_instances(self):
        names = [f"attribute-{i}" for i in range(50)]
        first = ShardRouter(SHARDS)
        second = ShardRouter(list(SHARDS))
        assert [first.shard_for(n) for n in names] == [second.shard_for(n) for n in names]

    def test_placement_spreads_over_shards(self):
        router = ShardRouter(SHARDS)
        homes = {router.shard_for(f"attribute-{i}") for i in range(200)}
        assert homes == set(SHARDS)

    def test_removing_a_shard_moves_only_its_attributes(self):
        names = [f"attribute-{i}" for i in range(200)]
        full = ShardRouter(SHARDS)
        reduced = ShardRouter(SHARDS[:-1])
        for name in names:
            home = full.shard_for(name)
            if home != SHARDS[-1]:
                assert reduced.shard_for(name) == home

    def test_exclude_walks_past_the_excluded_shard(self):
        router = ShardRouter(SHARDS)
        name = "some-attribute"
        home = router.shard_for(name)
        alternative = router.ring_shard_for(name, exclude=(home,))
        assert alternative != home
        assert alternative in SHARDS

    def test_excluding_every_shard_is_an_error(self):
        router = ShardRouter(SHARDS)
        with pytest.raises(ClusterError):
            router.ring_shard_for("x", exclude=tuple(SHARDS))

    def test_rejects_bad_membership(self):
        with pytest.raises(ConfigurationError):
            ShardRouter([])
        with pytest.raises(ConfigurationError):
            ShardRouter(["a", "a"])
        with pytest.raises(ConfigurationError):
            ShardRouter([""])


class TestOverrides:
    def test_override_beats_the_ring(self):
        router = ShardRouter(SHARDS)
        name = "pinned"
        other = next(s for s in SHARDS if s != router.shard_for(name))
        router.assign(name, other)
        assert router.shard_for(name) == other
        router.unassign(name)
        assert router.shard_for(name) == ShardRouter(SHARDS).shard_for(name)

    def test_override_requires_member_shard(self):
        router = ShardRouter(SHARDS)
        with pytest.raises(ClusterError):
            router.assign("x", "not-a-shard")

    def test_placement_reports_rules(self):
        router = ShardRouter(SHARDS)
        router.assign("pinned", "shard-2")
        router.partition("hot", [10.0, 20.0])
        placement = router.placement()
        assert placement["overrides"] == {"pinned": "shard-2"}
        assert placement["partitions"]["hot"]["boundaries"] == [10.0, 20.0]


class TestRangePartition:
    def test_values_route_by_half_open_ranges(self):
        partition = RangePartition("hot", (10.0, 20.0), ("a", "b", "c"))
        assert partition.shard_for_value(9.9) == "a"
        # A value on a cut point routes to the piece on its right.
        assert partition.shard_for_value(10.0) == "b"
        assert partition.shard_for_value(19.9) == "b"
        assert partition.shard_for_value(20.0) == "c"
        assert partition.shard_for_value(1e9) == "c"

    def test_split_groups_match_scalar_routing(self):
        partition = RangePartition("hot", (10.0, 20.0, 30.0), ("a", "b", "c", "d"))
        rng = np.random.default_rng(5)
        values = rng.uniform(-5.0, 45.0, 500).tolist()
        groups = partition.split(values)
        total = sum(len(g) for g in groups.values())
        assert total == len(values)
        for shard_id, group in groups.items():
            for value in group:
                assert partition.shard_for_value(value) == shard_id

    def test_split_preserves_submission_order_per_shard(self):
        partition = RangePartition("hot", (10.0,), ("a", "b"))
        values = [1.0, 11.0, 2.0, 12.0, 3.0]
        groups = partition.split(values)
        assert groups["a"] == [1.0, 2.0, 3.0]
        assert groups["b"] == [11.0, 12.0]

    def test_pieces_may_share_a_shard(self):
        partition = RangePartition("hot", (10.0, 20.0), ("a", "b", "a"))
        groups = partition.split([5.0, 15.0, 25.0])
        assert groups == {"a": [5.0, 25.0], "b": [15.0]}
        assert partition.piece_shard_ids == ("a", "b")

    def test_default_piece_assignment_is_round_robin(self):
        router = ShardRouter(["s1", "s0"])
        partition = router.partition("hot", [1.0, 2.0, 3.0])
        assert partition.shard_ids == ("s0", "s1", "s0", "s1")

    def test_rejects_malformed_partitions(self):
        with pytest.raises(ConfigurationError):
            RangePartition("hot", (10.0, 10.0), ("a", "b", "c"))
        with pytest.raises(ConfigurationError):
            RangePartition("hot", (20.0, 10.0), ("a", "b", "c"))
        with pytest.raises(ConfigurationError):
            RangePartition("hot", (float("nan"),), ("a", "b"))
        with pytest.raises(ConfigurationError):
            RangePartition("hot", (10.0,), ("a",))

    def test_partition_and_pin_are_mutually_exclusive(self):
        router = ShardRouter(SHARDS)
        router.assign("pinned", "shard-0")
        with pytest.raises(ClusterError):
            router.partition("pinned", [1.0])
        router.partition("hot", [1.0])
        with pytest.raises(ClusterError):
            router.assign("hot", "shard-0")
        with pytest.raises(ClusterError):
            router.shard_for("hot")
        assert router.shards_for("hot") == ("shard-0", "shard-1")
