"""Unit tests for the DVO and DADO dynamic histograms (Section 4)."""

import numpy as np
import pytest

from repro import DADOHistogram, DataDistribution, DVOHistogram, ks_statistic
from repro.core.deviation import DeviationMetric
from repro.exceptions import ConfigurationError, DeletionError


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            DVOHistogram(0)
        with pytest.raises(ConfigurationError):
            DVOHistogram(8, sub_buckets=0)
        with pytest.raises(ConfigurationError):
            DVOHistogram(8, value_unit=-1.0)
        with pytest.raises(ConfigurationError):
            DVOHistogram(8, repartition_threshold=1.0)

    def test_metrics(self):
        assert DVOHistogram.metric is DeviationMetric.VARIANCE
        assert DADOHistogram.metric is DeviationMetric.ABSOLUTE

    def test_accessors(self):
        histogram = DADOHistogram(12, sub_buckets=3)
        assert histogram.bucket_budget == 12
        assert histogram.sub_bucket_count == 3
        assert histogram.is_loading


class TestLoadingAndBootstrap:
    def test_bootstrap_happens_after_budget_distinct_values(self):
        histogram = DADOHistogram(5)
        for value in [10, 20, 30, 40, 50]:
            histogram.insert(value)
        assert histogram.is_loading
        histogram.insert(60)
        assert not histogram.is_loading
        assert histogram.total_count == pytest.approx(6)

    def test_buckets_available_during_loading(self):
        histogram = DADOHistogram(5)
        histogram.insert(10)
        histogram.insert(10)
        assert histogram.total_count == 2
        assert histogram.bucket_count == 1

    def test_sub_bucketed_view_requires_two_sub_buckets(self):
        histogram = DADOHistogram(4, sub_buckets=3)
        for value in range(6):
            histogram.insert(value)
        with pytest.raises(ConfigurationError):
            histogram.sub_bucketed_buckets()

    def test_sub_bucketed_view(self):
        histogram = DADOHistogram(4)
        for value in [0, 10, 20, 30, 40, 40]:
            histogram.insert(value)
        views = histogram.sub_bucketed_buckets()
        assert len(views) == len(histogram.buckets()) / 2 or len(views) >= 1
        assert sum(view.count for view in views) == pytest.approx(histogram.total_count)


class TestInsertions:
    @pytest.mark.parametrize("histogram_class", [DVOHistogram, DADOHistogram])
    def test_count_is_conserved(self, histogram_class, uniform_values):
        histogram = histogram_class(24)
        for value in uniform_values:
            histogram.insert(float(value))
        assert histogram.total_count == pytest.approx(len(uniform_values), rel=1e-9)

    def test_bucket_budget_is_respected(self, uniform_values):
        histogram = DADOHistogram(16)
        for value in uniform_values:
            histogram.insert(float(value))
        # Each bucket is exposed as its sub-bucket segments.
        assert len(histogram.buckets()) <= 16 * histogram.sub_bucket_count

    def test_out_of_range_points_are_absorbed(self):
        histogram = DADOHistogram(6)
        for value in [10, 20, 30, 40, 50, 60, 70]:
            histogram.insert(value)
        histogram.insert(500.0)
        histogram.insert(-100.0)
        assert histogram.total_count == pytest.approx(9)
        assert histogram.min_value <= -100.0
        assert histogram.max_value >= 500.0

    def test_repartitioning_happens_on_skewed_data(self, rng):
        histogram = DADOHistogram(16)
        values = np.concatenate([np.arange(0, 170, 10), rng.integers(40, 45, size=2000)])
        for value in values:
            histogram.insert(float(value))
        assert histogram.repartition_count > 0

    def test_accuracy_beats_naive_wide_buckets(self, rng):
        # A strongly clustered distribution: DADO must place narrow buckets on
        # the clusters and achieve a small KS statistic.
        centers = rng.choice(np.arange(0, 1000, 50), size=4000)
        noise = rng.integers(-2, 3, size=4000)
        values = np.clip(centers + noise, 0, 1000)
        histogram = DADOHistogram(40)
        truth = DataDistribution()
        for value in values:
            histogram.insert(float(value))
            truth.add(float(value))
        assert ks_statistic(truth, histogram, value_unit=1.0) < 0.08

    def test_dado_tracks_dvo_or_better_on_skewed_stream(self, small_values):
        dado = DADOHistogram(32)
        dvo = DVOHistogram(32)
        truth = DataDistribution()
        for value in small_values:
            dado.insert(float(value))
            dvo.insert(float(value))
            truth.add(float(value))
        ks_dado = ks_statistic(truth, dado, value_unit=1.0)
        ks_dvo = ks_statistic(truth, dvo, value_unit=1.0)
        # The paper's headline: absolute deviations are more robust on streams.
        assert ks_dado <= ks_dvo * 1.5


class TestDeletions:
    def test_delete_reverses_insert(self, uniform_values):
        histogram = DADOHistogram(24)
        for value in uniform_values:
            histogram.insert(float(value))
        for value in uniform_values[:400]:
            histogram.delete(float(value))
        assert histogram.total_count == pytest.approx(len(uniform_values) - 400, rel=1e-9)

    def test_delete_during_loading(self):
        histogram = DADOHistogram(8)
        histogram.insert(3)
        histogram.delete(3)
        assert histogram.total_count == 0
        with pytest.raises(DeletionError):
            histogram.delete(3)

    def test_delete_spills_to_closest_bucket(self):
        histogram = DADOHistogram(4)
        for value in [10, 20, 30, 40, 50]:
            histogram.insert(value)
        # Delete more copies of 50 than were inserted into its bucket; the
        # spill policy must keep the total consistent rather than failing.
        histogram.delete(50)
        histogram.delete(50)
        assert histogram.total_count == pytest.approx(3)

    def test_delete_from_exhausted_histogram_raises(self):
        histogram = DADOHistogram(3)
        for value in [1, 2, 3, 4]:
            histogram.insert(value)
        for value in [1, 2, 3, 4]:
            histogram.delete(value)
        with pytest.raises(DeletionError):
            histogram.delete(1)


class TestProjectSegmentsMassConservation:
    def test_negative_drift_larger_than_last_slot_preserves_mass(self):
        # Regression: the drift correction used to clamp ``counts[-1]`` at 0,
        # silently losing mass whenever floating-point drift was negative and
        # the last sub-range was empty.  This adversarial projection (a huge
        # count over thirds of an irrational-ish width, onto borders whose
        # last sub-range lies beyond the segment) produced drift = -2.0 on the
        # seed implementation and lost those two units.
        from repro.core.dynamic_vopt import _project_segments

        left, right, count = 0.3, 1.0, 1e16
        width = right - left
        borders = [left, left + width / 3, left + 2 * width / 3, right, right + 1.0]
        counts = _project_segments([(left, right, count)], borders)
        assert sum(counts) == count
        assert all(part >= 0.0 for part in counts)

    def test_positive_drift_goes_to_last_slot(self):
        from repro.core.dynamic_vopt import _project_segments

        # A segment reaching beyond the last border: the unassigned tail mass
        # must be folded back so the total is exact.
        counts = _project_segments([(0.0, 10.0, 100.0)], [0.0, 2.5, 5.0])
        assert sum(counts) == pytest.approx(100.0)

    @pytest.mark.parametrize("metric_class", [DVOHistogram, DADOHistogram])
    def test_merges_preserve_mass_exactly(self, metric_class, rng):
        histogram = metric_class(8)
        values = rng.integers(0, 10_000, size=3000)
        inserted = 0
        for value in values:
            histogram.insert(float(value))
            inserted += 1
        assert histogram.total_count == pytest.approx(inserted, rel=1e-12)


class TestOutOfRangeRepartitionCount:
    def test_under_budget_borrow_is_not_a_repartition(self):
        # Regression: borrowing a bucket for an out-of-range point used to
        # increment the repartition counter even when the bucket count was
        # still under budget and no merge was performed, inflating the
        # Fig. 13-style construction-cost statistics.
        histogram = DADOHistogram(8)
        for value in [10.0, 20.0, 30.0]:
            histogram.insert(value)
        histogram.sub_bucketed_buckets()  # force the bootstrap under budget
        assert not histogram.is_loading
        assert len(histogram.bucket_array) < histogram.bucket_budget
        histogram.insert(500.0)
        assert histogram.repartition_count == 0
        histogram.insert(-500.0)
        assert histogram.repartition_count == 0
        assert histogram.total_count == pytest.approx(5.0)

    def test_over_budget_borrow_counts_once_merge_happens(self):
        histogram = DVOHistogram(3)
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.insert(value)  # bootstraps into exactly 3 buckets
        assert not histogram.is_loading
        assert len(histogram.bucket_array) == histogram.bucket_budget
        before = histogram.repartition_count
        histogram.insert(100.0)
        assert histogram.repartition_count == before + 1
        assert len(histogram.bucket_array) == histogram.bucket_budget


class TestSubBucketAblation:
    @pytest.mark.parametrize("sub_buckets", [2, 3, 4])
    def test_all_sub_bucket_counts_work(self, sub_buckets, uniform_values):
        histogram = DADOHistogram(16, sub_buckets=sub_buckets)
        truth = DataDistribution()
        for value in uniform_values:
            histogram.insert(float(value))
            truth.add(float(value))
        assert histogram.total_count == pytest.approx(len(uniform_values), rel=1e-9)
        assert ks_statistic(truth, histogram, value_unit=1.0) < 0.2
