"""End-to-end tests for the JSON HTTP statistics server and its client."""

import json
import urllib.error
import urllib.request

import pytest

from repro import (
    HistogramStore,
    IngestPipeline,
    ServiceError,
    StatisticsClient,
    StatisticsServer,
    UnknownAttributeError,
)


@pytest.fixture
def server():
    with StatisticsServer(HistogramStore()) as running:
        yield running


@pytest.fixture
def client(server):
    host, port = server.address
    return StatisticsClient(host, port)


class TestLifecycleRoutes:
    def test_health(self, client):
        response = client.health()
        assert response["status"] == "ok"
        assert response["attributes"] == 0

    def test_create_ingest_estimate_round_trip(self, client):
        created = client.create("age", "dc", memory_kb=0.5)
        assert created["name"] == "age"
        assert created["total_count"] == 0

        response = client.ingest("age", insert=[float(v % 90) for v in range(2000)])
        assert response["buffered"] is False
        assert response["inserted"] == 2000

        assert client.total_count("age") == pytest.approx(2000.0)
        full = client.estimate_range("age", 0, 89)
        assert full == pytest.approx(2000.0, rel=0.01)
        assert client.estimate_equal("age", 42.0) > 0
        cdf = client.cdf("age", [0.0, 45.0, 89.0])
        assert cdf[-1] == pytest.approx(1.0)
        assert cdf == sorted(cdf)

    def test_ingest_deletes(self, client):
        client.create("age", "dc", memory_kb=0.5)
        client.ingest("age", insert=[float(v % 70) for v in range(1000)])
        response = client.ingest("age", delete=[10.0, 11.0])
        assert response["deleted"] == 2
        assert client.total_count("age") == pytest.approx(998.0)

    def test_consistent_query_batch(self, client):
        client.create("age", "dado", memory_kb=0.5)
        client.ingest("age", insert=[float(v % 50) for v in range(1500)])
        response = client.query(
            "age", [{"op": "total"}, {"op": "range", "low": -1e18, "high": 1e18}]
        )
        total, full_range = response["results"]
        assert total == pytest.approx(full_range)
        assert "generation" in response

    def test_stats_routes(self, client):
        client.create("a1", "dc", memory_kb=0.5)
        client.create("a2", "dvo", memory_kb=0.5)
        everything = client.stats()
        assert [entry["name"] for entry in everything["attributes"]] == ["a1", "a2"]
        single = client.stats("a2")
        assert single["kind"] == "dvo"

    def test_drop(self, client):
        client.create("gone", "dc")
        client.drop("gone")
        with pytest.raises(UnknownAttributeError):
            client.stats("gone")

    def test_snapshot_restore_over_http(self, client):
        client.create("age", "dado", memory_kb=0.5)
        client.ingest("age", insert=[float(v % 40) for v in range(1200)])
        snapshot = client.snapshot("age")
        before = client.estimate_range("age", 5, 25)

        client.ingest("age", insert=[0.0] * 400)
        assert client.total_count("age") == pytest.approx(1600.0)

        restored = client.restore("age", snapshot)
        assert restored["total_count"] == pytest.approx(1200.0)
        assert client.estimate_range("age", 5, 25) == pytest.approx(before)

    def test_snapshot_survives_server_restart(self, client, server):
        client.create("age", "dc", memory_kb=0.5)
        client.ingest("age", insert=[float(v % 60) for v in range(1500)])
        snapshot = client.snapshot("age")

        with StatisticsServer(HistogramStore()) as second:
            host, port = second.address
            fresh_client = StatisticsClient(host, port)
            fresh_client.restore("age", snapshot)
            assert fresh_client.total_count("age") == pytest.approx(1500.0)


class TestErrorHandling:
    def test_unknown_attribute_404(self, client):
        with pytest.raises(UnknownAttributeError):
            client.estimate_range("missing", 0, 1)
        with pytest.raises(UnknownAttributeError):
            client.ingest("missing", insert=[1.0])

    def test_duplicate_create_conflict(self, client):
        client.create("dup", "dc")
        with pytest.raises(ServiceError, match="409"):
            client.create("dup", "dc")

    def test_duplicate_create_exist_ok(self, client):
        client.create("dup", "dc")
        stats = client.create("dup", "dc", exist_ok=True)
        assert stats["name"] == "dup"

    def test_bad_kind_400(self, client):
        with pytest.raises(ServiceError, match="400"):
            client.create("odd", "mystery")

    def test_unknown_route_404(self, server):
        host, port = server.address
        request = urllib.request.Request(f"http://{host}:{port}/nope")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 404

    def test_invalid_json_400(self, server):
        host, port = server.address
        request = urllib.request.Request(
            f"http://{host}:{port}/attributes",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_estimate_bad_query_400(self, client):
        client.create("age", "dc")
        with pytest.raises(ServiceError, match="400"):
            client.query("age", [{"op": "mystery"}])


class Test404BodyParsing:
    """The client must never trust the 404 body's quoting.

    Regression: the old parse was ``message.split("'")[1]``, which raised
    ``IndexError`` on any body that contained the phrase ``unknown
    attribute`` without a quoted name -- an old server, a proxy error page,
    or a hostile upstream.  The structured ``name`` field wins, the quoted
    token is the fallback, and the worst case degrades to the whole message.
    """

    @staticmethod
    def _client_returning(status, body):
        client = StatisticsClient("127.0.0.1", 1)
        client._raw_request = lambda *args, **kwargs: (status, body)
        return client

    def test_server_sends_structured_name(self, client):
        with pytest.raises(UnknownAttributeError) as excinfo:
            client.estimate_range("missing", 0, 1)
        assert excinfo.value.name == "missing"

    def test_hostile_body_without_quotes_does_not_crash(self):
        hostile = self._client_returning(
            404, b'{"error": "unknown attribute but no quotes anywhere"}'
        )
        with pytest.raises(UnknownAttributeError) as excinfo:
            hostile.total_count("whatever")
        assert excinfo.value.name == "unknown attribute but no quotes anywhere"

    def test_non_json_proxy_page_does_not_crash(self):
        hostile = self._client_returning(
            404, b"<html>unknown attribute -- gateway says no</html>"
        )
        with pytest.raises(UnknownAttributeError):
            hostile.total_count("whatever")

    def test_structured_name_beats_message_quoting(self):
        body = json.dumps(
            {"error": "unknown attribute 'decoy'", "name": "real'name"}
        ).encode("utf-8")
        hostile = self._client_returning(404, body)
        with pytest.raises(UnknownAttributeError) as excinfo:
            hostile.total_count("whatever")
        assert excinfo.value.name == "real'name"

    def test_legacy_body_falls_back_to_quoted_token(self):
        body = json.dumps(
            {"error": "unknown attribute 'age'; create it first"}
        ).encode("utf-8")
        legacy = self._client_returning(404, body)
        with pytest.raises(UnknownAttributeError) as excinfo:
            legacy.total_count("whatever")
        assert excinfo.value.name == "age"


class TestRawHttpSurface:
    def test_get_estimate_via_query_string(self, server):
        host, port = server.address
        client = StatisticsClient(host, port)
        client.create("age", "dc", memory_kb=0.5)
        client.ingest("age", insert=[float(v % 30) for v in range(900)])
        url = f"http://{host}:{port}/attributes/age/estimate?op=range&low=0&high=29"
        with urllib.request.urlopen(url) as response:
            payload = json.loads(response.read())
        assert payload["result"] == pytest.approx(900.0, rel=0.01)


class TestBufferedIngest:
    def test_pipeline_backed_server_buffers_and_flushes(self):
        store = HistogramStore()
        pipeline = IngestPipeline(store, max_batch=10_000, auto_flush_interval=0.02)
        with StatisticsServer(store, pipeline=pipeline) as running:
            host, port = running.address
            client = StatisticsClient(host, port)
            client.create("age", "dc", memory_kb=0.5)
            response = client.ingest("age", insert=[float(v) for v in range(100)])
            assert response["buffered"] is True
            import time

            deadline = time.time() + 5.0
            while client.total_count("age") < 100 and time.time() < deadline:
                time.sleep(0.01)
            assert client.total_count("age") == pytest.approx(100.0)


class TestPartialApply:
    def test_sync_ingest_partial_failure_reports_inserted(self, client):
        client.create("age", "dc", memory_kb=0.5)
        # The insert half commits before the delete half underflows.
        with pytest.raises(ServiceError, match="400") as excinfo:
            client.ingest("age", insert=[1.0], delete=[1.0, 2.0])
        payload = excinfo.value.payload
        assert payload["partial"] is True
        assert payload["inserted"] == 1
        assert "generation" in payload


class TestStopWithoutStart:
    def test_stop_on_never_started_server_returns(self):
        server = StatisticsServer(HistogramStore())
        server.stop()  # must not hang waiting for a serve loop that never ran
        # The socket is closed: a fresh server can bind the same port.
        assert server._thread is None


class TestAttributeNameEscaping:
    """Names containing URL-hostile characters must route correctly."""

    @pytest.mark.parametrize(
        "name",
        ["orders/amount", "unit price", "discount%", "a/b c%d", "100%/total share"],
    )
    def test_hostile_names_round_trip(self, client, name):
        client.create(name, "dc", memory_kb=0.5)
        client.ingest(name, insert=[1.0, 2.0, 3.0])
        assert client.total_count(name) == pytest.approx(3.0)
        assert client.stats(name)["name"] == name
        snapshot = client.snapshot(name)
        assert snapshot["name"] == name
        client.drop(name)
        with pytest.raises(UnknownAttributeError):
            client.total_count(name)

    def test_slash_name_does_not_shadow_another_route(self, client):
        # If "age/ingest" were not escaped it would route to the ingest action
        # of attribute "age" instead of the stats of attribute "age/ingest".
        client.create("age", "dc", memory_kb=0.5)
        client.create("age/ingest", "dc", memory_kb=0.5)
        client.ingest("age/ingest", insert=[1.0])
        assert client.total_count("age") == 0.0
        assert client.total_count("age/ingest") == pytest.approx(1.0)


class _FlakySocket:
    """Accepts TCP connections and immediately closes them (N times)."""

    def __init__(self):
        import socket as socket_module

        self.socket = socket_module.socket()
        self.socket.bind(("127.0.0.1", 0))
        self.socket.listen(8)
        self.socket.settimeout(0.1)
        self.port = self.socket.getsockname()[1]
        self.accepted = 0
        self._stop = False
        self._thread = None

    def _loop(self):
        import socket as socket_module

        while not self._stop:
            try:
                connection, _ = self.socket.accept()
            except socket_module.timeout:
                continue
            except OSError:
                break
            self.accepted += 1
            connection.close()

    def __enter__(self):
        import threading

        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._stop = True
        self._thread.join()
        self.socket.close()


class TestClientRetries:
    def test_connect_failures_retry_with_backoff_then_raise(self, monkeypatch):
        import socket as socket_module

        # Reserve a port and close it so nothing listens there.
        probe = socket_module.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()

        sleeps = []
        monkeypatch.setattr("repro.service.client.time.sleep", sleeps.append)
        flaky = StatisticsClient("127.0.0.1", dead_port, retries=2, retry_backoff=0.05)
        with pytest.raises(OSError):
            flaky.health()
        # Two retries -> two backoff sleeps, exponentially growing.
        assert sleeps == [0.05, 0.1]

    def test_get_after_connect_is_retried(self):
        with _FlakySocket() as flaky_server:
            flaky = StatisticsClient(
                "127.0.0.1", flaky_server.port, retries=2, retry_backoff=0.01
            )
            with pytest.raises(Exception):
                flaky.health()
        # One initial attempt plus two retries, all reached the socket.
        assert flaky_server.accepted == 3

    def test_post_after_connect_is_never_retried(self):
        # A POST whose fate is unknown must not be re-sent (double-apply risk).
        with _FlakySocket() as flaky_server:
            flaky = StatisticsClient(
                "127.0.0.1", flaky_server.port, retries=2, retry_backoff=0.01
            )
            with pytest.raises(Exception):
                flaky.ingest("age", insert=[1.0])
        assert flaky_server.accepted == 1

    def test_zero_retries_fails_fast(self, monkeypatch):
        import socket as socket_module

        probe = socket_module.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()

        sleeps = []
        monkeypatch.setattr("repro.service.client.time.sleep", sleeps.append)
        client = StatisticsClient("127.0.0.1", dead_port, retries=0)
        with pytest.raises(OSError):
            client.health()
        assert sleeps == []

    def test_retry_recovers_when_server_appears(self, server):
        # Against a live server the retrying client behaves identically.
        host, port = server.address
        patient = StatisticsClient(host, port, retries=3, retry_backoff=0.01)
        assert patient.health()["status"] == "ok"
