"""Unit tests for the Kolmogorov-Smirnov statistic (Eq. 6)."""

import numpy as np
import pytest

from repro import (
    CompressedHistogram,
    DataDistribution,
    EquiDepthHistogram,
    ExactHistogram,
    ks_statistic,
    ks_statistic_between,
)


class TestKSBetweenDistributions:
    def test_identical_distributions_have_zero_ks(self):
        dist = DataDistribution([1, 2, 2, 3])
        assert ks_statistic_between(dist, dist.copy()) == 0.0

    def test_disjoint_distributions_have_ks_one(self):
        first = DataDistribution([1, 2, 3])
        second = DataDistribution([10, 11, 12])
        assert ks_statistic_between(first, second) == pytest.approx(1.0)

    def test_known_shift(self):
        first = DataDistribution([1, 2, 3, 4])
        second = DataDistribution([2, 3, 4, 5])
        # At x in [4, 5) the first CDF is 1.0 and the second is 0.75.
        assert ks_statistic_between(first, second) == pytest.approx(0.25)

    def test_symmetry(self):
        first = DataDistribution([1, 1, 2, 5])
        second = DataDistribution([2, 3, 3, 7])
        assert ks_statistic_between(first, second) == pytest.approx(
            ks_statistic_between(second, first)
        )

    def test_empty_distributions(self):
        assert ks_statistic_between(DataDistribution(), DataDistribution()) == 0.0


class TestKSAgainstHistogram:
    def test_exact_histogram_has_zero_ks(self, small_distribution):
        histogram = ExactHistogram.build(small_distribution)
        assert ks_statistic(small_distribution, histogram) == pytest.approx(0.0, abs=1e-12)

    def test_exact_histogram_zero_ks_with_value_unit(self, small_distribution):
        histogram = ExactHistogram.build(small_distribution)
        assert ks_statistic(
            small_distribution, histogram, value_unit=1.0
        ) == pytest.approx(0.0, abs=1e-12)

    def test_ks_is_bounded(self, small_distribution):
        histogram = EquiDepthHistogram.build(small_distribution, 8)
        ks = ks_statistic(small_distribution, histogram)
        assert 0.0 <= ks <= 1.0

    def test_more_buckets_do_not_hurt_much(self, small_distribution):
        coarse = EquiDepthHistogram.build(small_distribution, 4)
        fine = EquiDepthHistogram.build(small_distribution, 64)
        ks_coarse = ks_statistic(small_distribution, coarse, value_unit=1.0)
        ks_fine = ks_statistic(small_distribution, fine, value_unit=1.0)
        assert ks_fine <= ks_coarse + 1e-9

    def test_point_mass_heavy_value_is_captured_by_compressed(self, skewed_distribution):
        histogram = CompressedHistogram.build(skewed_distribution, 5)
        ks = ks_statistic(skewed_distribution, histogram, value_unit=1.0)
        # The dominant value (frequency 40/70) is a singleton bucket, so the
        # error must be far below its relative frequency.
        assert ks < 40 / 70 / 2

    def test_ks_against_other_distribution_object(self):
        first = DataDistribution([1, 2, 3, 4])
        second = DataDistribution([1, 2, 3, 8])
        assert ks_statistic(first, second) == pytest.approx(0.25)

    def test_value_unit_must_be_positive(self, small_distribution):
        histogram = EquiDepthHistogram.build(small_distribution, 8)
        with pytest.raises(ValueError):
            ks_statistic(small_distribution, histogram, value_unit=0.0)

    def test_empty_truth_and_histogram(self):
        truth = DataDistribution()
        assert ks_statistic(truth, truth) == 0.0

    def test_extra_points_do_not_change_result_much(self, small_distribution):
        histogram = EquiDepthHistogram.build(small_distribution, 16)
        base = ks_statistic(small_distribution, histogram)
        extended = ks_statistic(
            small_distribution, histogram, extra_points=np.linspace(0, 1000, 50)
        )
        assert extended >= base - 1e-12
