"""Unit tests for histogram persistence (catalog save / restore)."""

import numpy as np
import pytest

from repro import (
    DADOHistogram,
    DataDistribution,
    DCHistogram,
    DVOHistogram,
    FrozenHistogram,
    SSBMHistogram,
    freeze,
    histogram_from_dict,
    histogram_to_dict,
    ks_statistic,
    load_histogram,
    save_histogram,
)
from repro.exceptions import ConfigurationError


def _buckets_equal(first, second):
    a, b = first.buckets(), second.buckets()
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.left == pytest.approx(y.left)
        assert x.right == pytest.approx(y.right)
        assert x.count == pytest.approx(y.count)


class TestFreeze:
    def test_freeze_snapshot_matches_source(self, uniform_values):
        histogram = DADOHistogram(24)
        for value in uniform_values:
            histogram.insert(float(value))
        snapshot = freeze(histogram)
        assert isinstance(snapshot, FrozenHistogram)
        _buckets_equal(histogram, snapshot)

    def test_freeze_is_decoupled_from_further_updates(self, uniform_values):
        histogram = DCHistogram(24)
        for value in uniform_values[:800]:
            histogram.insert(float(value))
        snapshot = freeze(histogram)
        before = snapshot.total_count
        for value in uniform_values[800:]:
            histogram.insert(float(value))
        assert snapshot.total_count == before


class TestDictRoundTrip:
    @pytest.mark.parametrize("histogram_class", [DCHistogram, DVOHistogram, DADOHistogram])
    def test_dynamic_round_trip_preserves_buckets(self, histogram_class, uniform_values):
        histogram = histogram_class(20)
        for value in uniform_values:
            histogram.insert(float(value))
        restored = histogram_from_dict(histogram_to_dict(histogram))
        assert type(restored) is histogram_class
        _buckets_equal(histogram, restored)
        assert restored.repartition_count == histogram.repartition_count

    @pytest.mark.parametrize("histogram_class", [DCHistogram, DADOHistogram])
    def test_restored_histogram_keeps_accepting_updates(self, histogram_class, uniform_values):
        original = histogram_class(20)
        for value in uniform_values[:1000]:
            original.insert(float(value))
        restored = histogram_from_dict(histogram_to_dict(original))

        truth = DataDistribution(uniform_values[:1000])
        for value in uniform_values[1000:]:
            original.insert(float(value))
            restored.insert(float(value))
            truth.add(float(value))
        assert restored.total_count == pytest.approx(original.total_count)
        assert ks_statistic(truth, restored, value_unit=1.0) < 0.1

    def test_round_trip_during_loading_phase(self):
        histogram = DADOHistogram(16)
        histogram.insert(3.0)
        histogram.insert(5.0)
        restored = histogram_from_dict(histogram_to_dict(histogram))
        assert restored.is_loading
        assert restored.total_count == 2

    def test_static_histogram_round_trip_is_frozen(self, small_distribution):
        histogram = SSBMHistogram.build(small_distribution, 16)
        restored = histogram_from_dict(histogram_to_dict(histogram))
        assert isinstance(restored, FrozenHistogram)
        _buckets_equal(histogram, restored)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            histogram_from_dict({"format_version": 1, "kind": "mystery"})

    def test_unknown_version_rejected(self):
        with pytest.raises(ConfigurationError):
            histogram_from_dict({"format_version": 99, "kind": "dc"})


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path, uniform_values):
        histogram = DADOHistogram(20)
        for value in uniform_values:
            histogram.insert(float(value))
        path = tmp_path / "stats.json"
        save_histogram(histogram, path)
        restored = load_histogram(path)
        _buckets_equal(histogram, restored)

    def test_saved_file_is_json(self, tmp_path, uniform_values):
        import json

        histogram = DCHistogram(20)
        for value in uniform_values[:500]:
            histogram.insert(float(value))
        path = tmp_path / "stats.json"
        save_histogram(histogram, path)
        payload = json.loads(path.read_text())
        assert payload["kind"] == "dc"
        assert payload["bucket_budget"] == 20
