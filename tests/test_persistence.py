"""Unit tests for histogram persistence (catalog save / restore)."""

import numpy as np
import pytest

from repro import (
    DADOHistogram,
    DataDistribution,
    DCHistogram,
    DVOHistogram,
    FrozenHistogram,
    SSBMHistogram,
    freeze,
    histogram_from_dict,
    histogram_to_dict,
    ks_statistic,
    load_histogram,
    save_histogram,
)
from repro.exceptions import ConfigurationError


def _buckets_equal(first, second):
    a, b = first.buckets(), second.buckets()
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.left == pytest.approx(y.left)
        assert x.right == pytest.approx(y.right)
        assert x.count == pytest.approx(y.count)


class TestFreeze:
    def test_freeze_snapshot_matches_source(self, uniform_values):
        histogram = DADOHistogram(24)
        for value in uniform_values:
            histogram.insert(float(value))
        snapshot = freeze(histogram)
        assert isinstance(snapshot, FrozenHistogram)
        _buckets_equal(histogram, snapshot)

    def test_freeze_is_decoupled_from_further_updates(self, uniform_values):
        histogram = DCHistogram(24)
        for value in uniform_values[:800]:
            histogram.insert(float(value))
        snapshot = freeze(histogram)
        before = snapshot.total_count
        for value in uniform_values[800:]:
            histogram.insert(float(value))
        assert snapshot.total_count == before


class TestDictRoundTrip:
    @pytest.mark.parametrize("histogram_class", [DCHistogram, DVOHistogram, DADOHistogram])
    def test_dynamic_round_trip_preserves_buckets(self, histogram_class, uniform_values):
        histogram = histogram_class(20)
        for value in uniform_values:
            histogram.insert(float(value))
        restored = histogram_from_dict(histogram_to_dict(histogram))
        assert type(restored) is histogram_class
        _buckets_equal(histogram, restored)
        assert restored.repartition_count == histogram.repartition_count

    @pytest.mark.parametrize("histogram_class", [DCHistogram, DADOHistogram])
    def test_restored_histogram_keeps_accepting_updates(self, histogram_class, uniform_values):
        original = histogram_class(20)
        for value in uniform_values[:1000]:
            original.insert(float(value))
        restored = histogram_from_dict(histogram_to_dict(original))

        truth = DataDistribution(uniform_values[:1000])
        for value in uniform_values[1000:]:
            original.insert(float(value))
            restored.insert(float(value))
            truth.add(float(value))
        assert restored.total_count == pytest.approx(original.total_count)
        assert ks_statistic(truth, restored, value_unit=1.0) < 0.1

    def test_round_trip_during_loading_phase(self):
        histogram = DADOHistogram(16)
        histogram.insert(3.0)
        histogram.insert(5.0)
        restored = histogram_from_dict(histogram_to_dict(histogram))
        assert restored.is_loading
        assert restored.total_count == 2

    def test_static_histogram_round_trip_is_frozen(self, small_distribution):
        histogram = SSBMHistogram.build(small_distribution, 16)
        restored = histogram_from_dict(histogram_to_dict(histogram))
        assert isinstance(restored, FrozenHistogram)
        _buckets_equal(histogram, restored)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            histogram_from_dict({"format_version": 1, "kind": "mystery"})

    def test_unknown_version_rejected(self):
        with pytest.raises(ConfigurationError):
            histogram_from_dict({"format_version": 99, "kind": "dc"})


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path, uniform_values):
        histogram = DADOHistogram(20)
        for value in uniform_values:
            histogram.insert(float(value))
        path = tmp_path / "stats.json"
        save_histogram(histogram, path)
        restored = load_histogram(path)
        _buckets_equal(histogram, restored)

    def test_saved_file_is_json(self, tmp_path, uniform_values):
        import json

        histogram = DCHistogram(20)
        for value in uniform_values[:500]:
            histogram.insert(float(value))
        path = tmp_path / "stats.json"
        save_histogram(histogram, path)
        payload = json.loads(path.read_text())
        assert payload["kind"] == "dc"
        assert payload["bucket_budget"] == 20


class TestRestoreCacheInvariant:
    """Restored histograms must never serve a stale segment view.

    ``histogram_from_dict`` restores internal state directly, bypassing the
    insert/delete template methods that normally bump the view generation
    (the ROADMAP cache invariant).  These tests pin down that the restore
    paths re-establish the invariant explicitly: the first read after a
    restore reflects the restored buckets exactly, and reads stay consistent
    through the restore-triggered bootstrap and later updates.
    """

    @pytest.mark.parametrize("histogram_class", [DCHistogram, DVOHistogram, DADOHistogram])
    def test_first_read_after_restore_matches_buckets(self, histogram_class, uniform_values):
        original = histogram_class(20)
        for value in uniform_values:
            original.insert(float(value))
        # Warm the original's view cache so the serialised state comes from a
        # histogram whose cached view is live.
        assert original.total_count == pytest.approx(len(uniform_values))
        restored = histogram_from_dict(histogram_to_dict(original))

        # The very first read must be derived from the restored buckets, not
        # any stale cache: cross-check the vectorised path against a
        # from-scratch per-bucket recomputation.
        expected_total = sum(bucket.count for bucket in restored.buckets())
        assert restored.total_count == pytest.approx(expected_total)
        low, high = float(np.min(uniform_values)), float(np.max(uniform_values))
        expected_range = sum(
            bucket.count_in_range(low, high) for bucket in restored.buckets()
        )
        assert restored.estimate_range(low, high) == pytest.approx(expected_range)

    def test_restore_bumps_view_generation(self, uniform_values):
        original = DADOHistogram(20)
        for value in uniform_values:
            original.insert(float(value))
        restored = histogram_from_dict(histogram_to_dict(original))
        # Restoration is a mutation: the fresh instance must not sit at the
        # class-level generation with unestablished caches.
        assert restored._view_generation > 0
        assert restored._view_cache is None

    @pytest.mark.parametrize("histogram_class", [DVOHistogram, DADOHistogram])
    def test_read_path_bootstrap_after_loading_restore_refreshes_view(self, histogram_class):
        original = histogram_class(8)
        for value in (3.0, 5.0, 9.0):
            original.insert(value)
        restored = histogram_from_dict(histogram_to_dict(original))
        assert restored.is_loading

        # First read during the loading phase: point-mass view of the buffer.
        assert restored.total_count == pytest.approx(3.0)
        # sub_bucketed_buckets() forces the bootstrap from a *read* path; the
        # bucket shapes change, so the cached view must be refreshed.
        restored.sub_bucketed_buckets()
        assert not restored.is_loading
        assert restored.total_count == pytest.approx(3.0)
        expected_total = sum(bucket.count for bucket in restored.buckets())
        assert restored.total_count == pytest.approx(expected_total)

    @pytest.mark.parametrize("histogram_class", [DCHistogram, DVOHistogram, DADOHistogram])
    def test_reads_track_updates_after_restore(self, histogram_class, uniform_values):
        original = histogram_class(20)
        for value in uniform_values:
            original.insert(float(value))
        restored = histogram_from_dict(histogram_to_dict(original))
        before = restored.total_count
        restored.insert(42.0)
        assert restored.total_count == pytest.approx(before + 1)
        restored.delete(42.0)
        assert restored.total_count == pytest.approx(before)
