"""Unit tests for histogram persistence (catalog save / restore)."""

import numpy as np
import pytest

from repro import (
    DADOHistogram,
    DataDistribution,
    DCHistogram,
    DVOHistogram,
    FrozenHistogram,
    SSBMHistogram,
    freeze,
    histogram_from_dict,
    histogram_to_dict,
    ks_statistic,
    load_histogram,
    save_histogram,
)
from repro.exceptions import ConfigurationError


def _buckets_equal(first, second):
    a, b = first.buckets(), second.buckets()
    assert len(a) == len(b)
    for x, y in zip(a, b, strict=True):
        assert x.left == pytest.approx(y.left)
        assert x.right == pytest.approx(y.right)
        assert x.count == pytest.approx(y.count)


class TestFreeze:
    def test_freeze_snapshot_matches_source(self, uniform_values):
        histogram = DADOHistogram(24)
        for value in uniform_values:
            histogram.insert(float(value))
        snapshot = freeze(histogram)
        assert isinstance(snapshot, FrozenHistogram)
        _buckets_equal(histogram, snapshot)

    def test_freeze_is_decoupled_from_further_updates(self, uniform_values):
        histogram = DCHistogram(24)
        for value in uniform_values[:800]:
            histogram.insert(float(value))
        snapshot = freeze(histogram)
        before = snapshot.total_count
        for value in uniform_values[800:]:
            histogram.insert(float(value))
        assert snapshot.total_count == before


class TestDictRoundTrip:
    @pytest.mark.parametrize("histogram_class", [DCHistogram, DVOHistogram, DADOHistogram])
    def test_dynamic_round_trip_preserves_buckets(self, histogram_class, uniform_values):
        histogram = histogram_class(20)
        for value in uniform_values:
            histogram.insert(float(value))
        restored = histogram_from_dict(histogram_to_dict(histogram))
        assert type(restored) is histogram_class
        _buckets_equal(histogram, restored)
        assert restored.repartition_count == histogram.repartition_count

    @pytest.mark.parametrize("histogram_class", [DCHistogram, DADOHistogram])
    def test_restored_histogram_keeps_accepting_updates(self, histogram_class, uniform_values):
        original = histogram_class(20)
        for value in uniform_values[:1000]:
            original.insert(float(value))
        restored = histogram_from_dict(histogram_to_dict(original))

        truth = DataDistribution(uniform_values[:1000])
        for value in uniform_values[1000:]:
            original.insert(float(value))
            restored.insert(float(value))
            truth.add(float(value))
        assert restored.total_count == pytest.approx(original.total_count)
        assert ks_statistic(truth, restored, value_unit=1.0) < 0.1

    def test_round_trip_during_loading_phase(self):
        histogram = DADOHistogram(16)
        histogram.insert(3.0)
        histogram.insert(5.0)
        restored = histogram_from_dict(histogram_to_dict(histogram))
        assert restored.is_loading
        assert restored.total_count == 2

    def test_static_histogram_round_trip_is_frozen(self, small_distribution):
        histogram = SSBMHistogram.build(small_distribution, 16)
        restored = histogram_from_dict(histogram_to_dict(histogram))
        assert isinstance(restored, FrozenHistogram)
        _buckets_equal(histogram, restored)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            histogram_from_dict({"format_version": 1, "kind": "mystery"})

    def test_unknown_version_rejected(self):
        with pytest.raises(ConfigurationError):
            histogram_from_dict({"format_version": 99, "kind": "dc"})


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path, uniform_values):
        histogram = DADOHistogram(20)
        for value in uniform_values:
            histogram.insert(float(value))
        path = tmp_path / "stats.json"
        save_histogram(histogram, path)
        restored = load_histogram(path)
        _buckets_equal(histogram, restored)

    def test_saved_file_is_json(self, tmp_path, uniform_values):
        import json

        histogram = DCHistogram(20)
        for value in uniform_values[:500]:
            histogram.insert(float(value))
        path = tmp_path / "stats.json"
        save_histogram(histogram, path)
        payload = json.loads(path.read_text())
        assert payload["kind"] == "dc"
        assert payload["bucket_budget"] == 20


class TestPR3SnapshotBackCompat:
    """PR-3-era JSON snapshots must load into the array core bit-identically.

    ``tests/data/pr3_snapshots.json`` holds histogram dicts serialised by the
    pre-array-core persistence layer together with estimates computed by that
    implementation.  The new core must restore them to the exact same
    answers, and a dict -> core -> dict round trip must be a fixed point
    (modulo the documented padding of legacy collapsed point-mass counter
    lists).
    """

    @pytest.fixture(scope="class")
    def fixture(self):
        import json
        from pathlib import Path

        path = Path(__file__).parent / "data" / "pr3_snapshots.json"
        return json.loads(path.read_text(encoding="utf-8"))

    @pytest.mark.parametrize("kind", ["dado", "dc"])
    def test_legacy_snapshot_estimates_are_bit_identical(self, fixture, kind):
        restored = histogram_from_dict(fixture["snapshots"][kind])
        expected = fixture["expected"][kind]
        assert float(restored.total_count) == expected["total"]
        for (low, high), want in zip(fixture["queries"], expected["ranges"], strict=True):
            assert float(restored.estimate_range(float(low), float(high))) == want
        assert float(restored.estimate_equal(55.0)) == expected["equal_55"]
        assert float(restored.cdf(100.0)) == expected["cdf_100"]

    @pytest.mark.parametrize("kind", ["dado", "dc"])
    def test_old_dict_new_core_dict_round_trip(self, fixture, kind):
        state = fixture["snapshots"][kind]
        first = histogram_to_dict(histogram_from_dict(state))
        # The re-serialised dict must itself be a fixed point ...
        second = histogram_to_dict(histogram_from_dict(first))
        assert first == second
        # ... and semantically identical to the legacy dict: same buckets,
        # same configuration, same continued-maintenance behaviour.
        legacy = histogram_from_dict(state)
        modern = histogram_from_dict(first)
        _buckets_equal(legacy, modern)
        legacy.insert_many([float(v % 130) for v in range(300)], repartition_interval=4)
        modern.insert_many([float(v % 130) for v in range(300)], repartition_interval=4)
        _buckets_equal(legacy, modern)

    @pytest.mark.parametrize("kind", ["dado", "dc"])
    def test_store_snapshot_blob_restores(self, fixture, kind):
        from repro import HistogramStore

        store = HistogramStore()
        blob = {
            "name": "legacy",
            "kind": kind,
            "memory_kb": 1.0,
            "generation": 7,
            "inserted": 500,
            "deleted": 37,
            "histogram": fixture["snapshots"][kind],
        }
        stats = store.restore("legacy", blob)
        assert stats.generation > 7
        assert store.total_count("legacy") == fixture["expected"][kind]["total"]

    def test_legacy_collapsed_point_mass_rows_are_padded(self):
        # The pre-array core serialised point-mass buckets created by border
        # projection with a single collapsed counter; the array core pads the
        # row back to the configured sub-bucket width without losing mass.
        state = {
            "format_version": 1,
            "kind": "dado",
            "bucket_budget": 4,
            "sub_buckets": 2,
            "value_unit": 1.0,
            "repartition_threshold": 0.0,
            "repartition_count": 0,
            "buckets": [[0.0, 10.0, [3.0, 4.0]], [42.0, 42.0, [5.0]]],
        }
        restored = histogram_from_dict(state)
        assert restored.total_count == pytest.approx(12.0)
        array = restored.bucket_array
        assert array.sub_counts.shape == (2, 2)
        assert float(array.sub_counts[1, 0]) == 5.0
        assert float(array.sub_counts[1, 1]) == 0.0


class TestRestoreCacheInvariant:
    """Restored histograms must never serve a stale segment view.

    ``histogram_from_dict`` restores internal state directly, bypassing the
    insert/delete template methods that normally bump the view generation
    (the ROADMAP cache invariant).  These tests pin down that the restore
    paths re-establish the invariant explicitly: the first read after a
    restore reflects the restored buckets exactly, and reads stay consistent
    through the restore-triggered bootstrap and later updates.
    """

    @pytest.mark.parametrize("histogram_class", [DCHistogram, DVOHistogram, DADOHistogram])
    def test_first_read_after_restore_matches_buckets(self, histogram_class, uniform_values):
        original = histogram_class(20)
        for value in uniform_values:
            original.insert(float(value))
        # Warm the original's view cache so the serialised state comes from a
        # histogram whose cached view is live.
        assert original.total_count == pytest.approx(len(uniform_values))
        restored = histogram_from_dict(histogram_to_dict(original))

        # The very first read must be derived from the restored buckets, not
        # any stale cache: cross-check the vectorised path against a
        # from-scratch per-bucket recomputation.
        expected_total = sum(bucket.count for bucket in restored.buckets())
        assert restored.total_count == pytest.approx(expected_total)
        low, high = float(np.min(uniform_values)), float(np.max(uniform_values))
        expected_range = sum(
            bucket.count_in_range(low, high) for bucket in restored.buckets()
        )
        assert restored.estimate_range(low, high) == pytest.approx(expected_range)

    def test_restore_leaves_no_stale_view(self, uniform_values):
        original = DADOHistogram(20)
        for value in uniform_values:
            original.insert(float(value))
        restored = histogram_from_dict(histogram_to_dict(original))
        # Restoration is a mutation: the restore path must drop any cached
        # view so the first read derives one from the restored arrays.
        assert restored._view_cache is None
        view = restored.segment_view()
        assert view.total == pytest.approx(original.total_count)
        assert restored.segment_view() is view  # cached until the next mutation
        restored.insert(1234.5)
        assert restored.segment_view() is not view

    @pytest.mark.parametrize("histogram_class", [DVOHistogram, DADOHistogram])
    def test_read_path_bootstrap_after_loading_restore_refreshes_view(self, histogram_class):
        original = histogram_class(8)
        for value in (3.0, 5.0, 9.0):
            original.insert(value)
        restored = histogram_from_dict(histogram_to_dict(original))
        assert restored.is_loading

        # First read during the loading phase: point-mass view of the buffer.
        assert restored.total_count == pytest.approx(3.0)
        # sub_bucketed_buckets() forces the bootstrap from a *read* path; the
        # bucket shapes change, so the cached view must be refreshed.
        restored.sub_bucketed_buckets()
        assert not restored.is_loading
        assert restored.total_count == pytest.approx(3.0)
        expected_total = sum(bucket.count for bucket in restored.buckets())
        assert restored.total_count == pytest.approx(expected_total)

    @pytest.mark.parametrize("histogram_class", [DCHistogram, DVOHistogram, DADOHistogram])
    def test_reads_track_updates_after_restore(self, histogram_class, uniform_values):
        original = histogram_class(20)
        for value in uniform_values:
            original.insert(float(value))
        restored = histogram_from_dict(histogram_to_dict(original))
        before = restored.total_count
        restored.insert(42.0)
        assert restored.total_count == pytest.approx(before + 1)
        restored.delete(42.0)
        assert restored.total_count == pytest.approx(before)
