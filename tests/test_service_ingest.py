"""Unit tests for the batching ingest pipeline."""

import time

import pytest

from repro import HistogramStore, IngestPipeline
from repro.exceptions import ConfigurationError


@pytest.fixture
def store():
    s = HistogramStore()
    s.create("age", "dc", memory_kb=0.5)
    s.create("price", "dado", memory_kb=0.5)
    return s


class TestBuffering:
    def test_values_buffer_until_flush(self, store):
        pipeline = IngestPipeline(store, max_batch=1000)
        pipeline.submit("age", [1.0, 2.0, 3.0])
        assert store.total_count("age") == 0
        assert pipeline.pending_count("age") == 3
        flushed = pipeline.flush("age")
        assert flushed == 3
        assert pipeline.pending_count("age") == 0
        assert store.total_count("age") == pytest.approx(3.0)

    def test_size_trigger_flushes_automatically(self, store):
        pipeline = IngestPipeline(store, max_batch=10)
        for value in range(25):
            pipeline.submit("age", [float(value)])
        # Two full batches of 10 must already have been applied.
        assert store.total_count("age") == pytest.approx(20.0)
        assert pipeline.pending_count("age") == 5
        pipeline.flush()
        assert store.total_count("age") == pytest.approx(25.0)

    def test_flush_all_covers_every_attribute(self, store):
        pipeline = IngestPipeline(store, max_batch=1000)
        pipeline.submit("age", [1.0] * 5)
        pipeline.submit("price", [2.0] * 7)
        assert pipeline.flush() == 12
        assert store.total_count("age") == pytest.approx(5.0)
        assert store.total_count("price") == pytest.approx(7.0)

    def test_empty_submissions_are_ignored(self, store):
        pipeline = IngestPipeline(store, max_batch=10)
        pipeline.submit("age", [])
        pipeline.submit_delete("age", [])
        assert pipeline.pending_count() == 0
        assert pipeline.flush() == 0

    def test_stats_counters(self, store):
        pipeline = IngestPipeline(store, max_batch=4)
        pipeline.submit("age", [1.0, 2.0, 3.0])
        stats = pipeline.stats
        assert stats["submitted"] == 3
        assert stats["pending"] == 3
        assert stats["flushed_values"] == 0
        pipeline.submit("age", [4.0])  # hits the size trigger
        stats = pipeline.stats
        assert stats["flushed_values"] == 4
        assert stats["pending"] == 0
        assert stats["flushed_batches"] == 1


class TestOrdering:
    def test_interleaved_deletes_preserve_order(self, store):
        store.insert("age", [float(v % 50) for v in range(200)])
        pipeline = IngestPipeline(store, max_batch=1000)
        # Insert 10.0 three times, then delete it twice: net +1.
        pipeline.submit("age", [10.0, 10.0, 10.0])
        pipeline.submit_delete("age", [10.0, 10.0])
        pipeline.submit("age", [11.0])
        pipeline.flush("age")
        assert store.total_count("age") == pytest.approx(202.0)
        assert store.stats("age").inserted == 204
        assert store.stats("age").deleted == 2

    def test_consecutive_inserts_collapse_into_one_run(self, store):
        pipeline = IngestPipeline(store, max_batch=1000)
        pipeline.submit("age", [1.0])
        pipeline.submit("age", [2.0])
        pipeline.submit("age", [3.0])
        pipeline.flush("age")
        # One insert_many call -> one store generation bump.
        assert store.stats("age").generation == 1


class TestEquivalence:
    def test_pipeline_matches_direct_ingest(self, store, rng):
        values = rng.integers(0, 120, 3000).astype(float)
        direct = HistogramStore()
        direct.create("age", "dc", memory_kb=0.5)
        direct.insert("age", values)

        with IngestPipeline(store, max_batch=256) as pipeline:
            for chunk_start in range(0, len(values), 17):
                pipeline.submit("age", values[chunk_start : chunk_start + 17])
        assert store.total_count("age") == pytest.approx(direct.total_count("age"))
        for low, high in [(0, 30), (25, 90), (100, 119)]:
            assert store.estimate_range("age", low, high) == pytest.approx(
                direct.estimate_range("age", low, high), rel=0.15, abs=30.0
            )


class TestLifecycle:
    def test_close_drains_buffers(self, store):
        pipeline = IngestPipeline(store, max_batch=10_000)
        pipeline.submit("age", [1.0] * 42)
        pipeline.close()
        assert store.total_count("age") == pytest.approx(42.0)

    def test_context_manager_flushes_on_exit(self, store):
        with IngestPipeline(store, max_batch=10_000) as pipeline:
            pipeline.submit("price", [5.0] * 9)
        assert store.total_count("price") == pytest.approx(9.0)

    def test_background_flusher_applies_without_explicit_flush(self, store):
        # Submit below the size trigger and wait for the time trigger.
        with IngestPipeline(store, max_batch=10_000, auto_flush_interval=0.02) as pipeline:
            pipeline.submit("age", [float(v) for v in range(30)])
            deadline = time.time() + 5.0
            while store.total_count("age") < 30 and time.time() < deadline:
                time.sleep(0.01)
            assert store.total_count("age") == pytest.approx(30.0)

    def test_invalid_configuration_rejected(self, store):
        with pytest.raises(ConfigurationError):
            IngestPipeline(store, max_batch=0)
        with pytest.raises(ConfigurationError):
            IngestPipeline(store, auto_flush_interval=-1.0)


class TestFlushFailures:
    def test_dropped_attribute_discards_pending_and_keeps_flusher_alive(self, store):
        with IngestPipeline(store, max_batch=10_000, auto_flush_interval=0.02) as pipeline:
            pipeline.submit("age", [1.0, 2.0, 3.0])
            store.drop("age")
            # The next background flush hits UnknownAttributeError; the
            # flusher must survive it and keep serving other attributes.
            pipeline.submit("price", [5.0] * 4)
            deadline = time.time() + 5.0
            while store.total_count("price") < 4 and time.time() < deadline:
                time.sleep(0.01)
            assert store.total_count("price") == pytest.approx(4.0)
            deadline = time.time() + 5.0
            while pipeline.pending_count("age") > 0 and time.time() < deadline:
                time.sleep(0.01)
            assert pipeline.pending_count("age") == 0  # discarded, not retried
            assert pipeline.stats["flush_errors"] >= 1

    def test_failed_flush_drops_poisoned_value_requeues_unapplied_tail(self, store):
        from repro.exceptions import DeletionError

        pipeline = IngestPipeline(store, max_batch=10_000)
        store.insert("age", [10.0] * 5)
        pipeline.submit_delete("age", [10.0, 7777.0, 10.0])
        with pytest.raises(DeletionError):
            pipeline.flush("age")
        # The applied prefix is NOT requeued (no double deletes), the
        # poisoned value is dropped, the unapplied tail stays buffered.
        assert store.total_count("age") == pytest.approx(4.0)
        assert pipeline.pending_count("age") == 1
        assert pipeline.stats["flush_errors"] == 1
        assert pipeline.flush("age") == 1
        assert store.total_count("age") == pytest.approx(3.0)

    def test_failed_flush_never_reapplies_prefix_under_background_retries(self, store):
        store.insert("age", [10.0] * 30)
        with IngestPipeline(store, max_batch=10_000, auto_flush_interval=0.02) as pipeline:
            pipeline.submit_delete("age", [10.0, 7777.0])
            time.sleep(0.3)
            # Exactly one delete applied, regardless of how many retry ticks
            # the background flusher ran in the meantime.
            assert store.total_count("age") == pytest.approx(29.0)
            assert pipeline.pending_count("age") == 0

    def test_invalid_run_is_dropped_not_retried(self, store):
        store.insert("age", [5.0, 6.0])
        pipeline = IngestPipeline(store, max_batch=10_000)
        pipeline.submit("age", [1.0, float("nan")])  # rejected at the boundary
        pipeline.submit_delete("age", [5.0])
        pipeline.submit("age", [7.0])
        with pytest.raises(ConfigurationError):
            pipeline.flush("age")
        # The invalid insert run (which had applied nothing) is gone; the
        # runs behind it are preserved and apply cleanly on the next flush.
        assert store.total_count("age") == pytest.approx(2.0)
        pipeline.flush("age")
        assert store.total_count("age") == pytest.approx(2.0)  # -5.0, +7.0
        assert pipeline.pending_count("age") == 0
        assert pipeline.stats["flush_errors"] == 1
