"""Unit tests for the mail-order trace substitute and the reference configurations."""

import numpy as np
import pytest

from repro import MailOrderConfig, generate_mail_order_values, reference_config, static_comparison_config
from repro.datagen.mailorder import generate_mail_order_distribution
from repro.datagen.reference import (
    PAPER_DOMAIN,
    PAPER_NUM_POINTS,
    distributed_site_config,
)
from repro.exceptions import ConfigurationError


class TestMailOrderConfig:
    def test_defaults_match_paper_trace_size(self):
        assert MailOrderConfig().n_records == 61_105
        assert MailOrderConfig().max_amount == 500.0

    def test_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            MailOrderConfig(spike_fraction=0.9, tail_fraction=0.2)
        with pytest.raises(ConfigurationError):
            MailOrderConfig(body_median=600.0)
        with pytest.raises(ConfigurationError):
            MailOrderConfig(body_sigma=0.0)


class TestMailOrderGeneration:
    def test_record_count_and_domain(self):
        config = MailOrderConfig(n_records=5000, seed=1)
        values = generate_mail_order_values(config)
        assert len(values) == 5000
        assert values.min() >= 0.0
        assert values.max() <= config.max_amount

    def test_values_are_cent_precision(self):
        values = generate_mail_order_values(MailOrderConfig(n_records=2000, seed=2))
        np.testing.assert_allclose(values, np.round(values, 2))

    def test_distribution_is_spiky(self):
        dist = generate_mail_order_distribution(MailOrderConfig(n_records=20_000, seed=3))
        frequencies = dist.frequencies
        # The synthetic trace must have pronounced point masses (spikes): the
        # most popular price point should carry far more than a uniform share.
        assert frequencies.max() > 20 * frequencies.mean()

    def test_determinism(self):
        config = MailOrderConfig(n_records=3000, seed=9)
        np.testing.assert_array_equal(
            generate_mail_order_values(config), generate_mail_order_values(config)
        )


class TestReferenceConfigs:
    def test_reference_defaults(self):
        config = reference_config()
        assert config.n_points == PAPER_NUM_POINTS
        assert config.domain == PAPER_DOMAIN
        assert config.n_clusters == 2000
        assert config.center_skew == 1.0
        assert config.cluster_sd == 2.0

    def test_reference_scaling(self):
        config = reference_config(scale=0.1)
        assert config.n_points == 10_000
        assert config.n_clusters == 200
        assert config.domain == PAPER_DOMAIN

    def test_static_comparison_defaults(self):
        config = static_comparison_config()
        assert config.n_clusters == 50
        assert config.cluster_sd == 1.0

    def test_static_comparison_scaling_keeps_cluster_count(self):
        config = static_comparison_config(scale=0.05)
        assert config.n_clusters == 50
        assert config.n_points == 5000

    def test_distributed_site_config(self):
        config = distributed_site_config(
            n_points=1000, intrasite_skew=1.5, domain=(100, 300), seed=3
        )
        assert config.n_points == 1000
        assert config.size_skew == 1.5
        assert config.domain == (100, 300)
