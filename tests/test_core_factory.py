"""Unit tests for the histogram factories."""

import pytest

from repro import (
    ApproximateCompressedHistogram,
    CompressedHistogram,
    DADOHistogram,
    DCHistogram,
    DVOHistogram,
    EquiDepthHistogram,
    EquiWidthHistogram,
    ExactHistogram,
    MemoryModel,
    SADOHistogram,
    SSBMHistogram,
    VOptimalHistogram,
    build_dynamic_histogram,
    build_static_histogram,
)
from repro.exceptions import ConfigurationError


class TestDynamicFactory:
    @pytest.mark.parametrize(
        "kind, expected_class",
        [
            ("dc", DCHistogram),
            ("dvo", DVOHistogram),
            ("dado", DADOHistogram),
            ("ac", ApproximateCompressedHistogram),
        ],
    )
    def test_builds_expected_class(self, kind, expected_class):
        histogram = build_dynamic_histogram(kind, 1.0)
        assert isinstance(histogram, expected_class)

    def test_memory_budgets_match_memory_model(self):
        model = MemoryModel()
        assert build_dynamic_histogram("dc", 1.0).bucket_budget == model.buckets_for_kb("dc", 1.0)
        assert build_dynamic_histogram("dado", 1.0).bucket_budget == model.buckets_for_kb(
            "dado", 1.0
        )

    def test_ac_disk_factor_controls_sample_size(self):
        small = build_dynamic_histogram("ac", 1.0, disk_factor=5.0)
        large = build_dynamic_histogram("ac", 1.0, disk_factor=40.0)
        assert large.backing_sample.capacity == 8 * small.backing_sample.capacity

    def test_case_insensitive(self):
        assert isinstance(build_dynamic_histogram("DADO", 1.0), DADOHistogram)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            build_dynamic_histogram("equi_width", 1.0)


class TestStaticFactory:
    @pytest.mark.parametrize(
        "kind, expected_class",
        [
            ("equi_width", EquiWidthHistogram),
            ("equi_depth", EquiDepthHistogram),
            ("sc", CompressedHistogram),
            ("compressed", CompressedHistogram),
            ("svo", VOptimalHistogram),
            ("sado", SADOHistogram),
            ("ssbm", SSBMHistogram),
            ("exact", ExactHistogram),
        ],
    )
    def test_builds_expected_class(self, kind, expected_class, skewed_distribution):
        histogram = build_static_histogram(kind, skewed_distribution, 0.05)
        assert isinstance(histogram, expected_class)
        assert histogram.total_count == pytest.approx(skewed_distribution.total_count)

    def test_memory_controls_bucket_count(self, small_distribution):
        small = build_static_histogram("ssbm", small_distribution, 0.1)
        large = build_static_histogram("ssbm", small_distribution, 0.5)
        assert large.bucket_count > small.bucket_count

    def test_unknown_kind_rejected(self, skewed_distribution):
        with pytest.raises(ConfigurationError):
            build_static_histogram("dado", skewed_distribution, 1.0)
