"""Unit tests for reservoir sampling, the backing sample and the AC histogram."""

import numpy as np
import pytest

from repro import (
    ApproximateCompressedHistogram,
    BackingSample,
    DataDistribution,
    ReservoirSampler,
    ks_statistic,
)
from repro.exceptions import DeletionError


class TestReservoirSampler:
    def test_fills_up_to_capacity(self):
        sampler = ReservoirSampler(10, seed=1)
        for value in range(7):
            assert sampler.offer(value)
        assert sampler.size == 7
        assert not sampler.is_full

    def test_never_exceeds_capacity(self):
        sampler = ReservoirSampler(10, seed=1)
        sampler.offer_many(range(1000))
        assert sampler.size == 10
        assert sampler.seen_count == 1000

    def test_sample_values_come_from_the_stream(self):
        sampler = ReservoirSampler(20, seed=2)
        sampler.offer_many(range(500))
        assert all(0 <= value < 500 for value in sampler.values())

    def test_uniformity_over_many_runs(self):
        # Each element of a 100-element stream should be retained with
        # probability 10/100; check the aggregate inclusion counts.
        inclusion = np.zeros(100)
        for seed in range(300):
            sampler = ReservoirSampler(10, seed=seed)
            sampler.offer_many(range(100))
            for value in sampler.values():
                inclusion[int(value)] += 1
        expected = 300 * 10 / 100
        assert abs(inclusion.mean() - expected) < 1e-9
        assert inclusion.std() < expected  # no value is systematically favoured

    def test_discard_value(self):
        sampler = ReservoirSampler(5, seed=3)
        sampler.offer_many([1, 2, 3])
        assert sampler.discard_value(2)
        assert not sampler.discard_value(99)
        assert sampler.size == 2

    def test_reset(self):
        sampler = ReservoirSampler(5, seed=4)
        sampler.offer_many(range(100))
        sampler.reset([1, 2, 3], population_size=50)
        assert sampler.values() == [1.0, 2.0, 3.0]
        assert sampler.seen_count == 50
        with pytest.raises(ValueError):
            sampler.reset(range(10), population_size=100)
        with pytest.raises(ValueError):
            sampler.reset([1, 2], population_size=1)

    def test_invalid_capacity(self):
        with pytest.raises(Exception):
            ReservoirSampler(0)


class TestBackingSample:
    def test_insertions_feed_the_reservoir(self):
        sample = BackingSample(50, seed=1)
        for value in range(200):
            sample.insert(value)
        assert sample.sample_size == 50
        assert sample.relation_size == 200
        assert sample.scale_factor == pytest.approx(4.0)

    def test_delete_unknown_value_raises(self):
        sample = BackingSample(10, seed=1)
        sample.insert(5)
        with pytest.raises(DeletionError):
            sample.delete(7)

    def test_deletions_shrink_the_relation(self):
        sample = BackingSample(10, seed=2)
        for value in range(20):
            sample.insert(value)
        for value in range(5):
            sample.delete(value)
        assert sample.relation_size == 15

    def test_heavy_deletions_trigger_rescan(self):
        sample = BackingSample(50, low_water_fraction=0.9, seed=3)
        values = list(range(100))
        for value in values:
            sample.insert(value)
        for value in values[:80]:
            sample.delete(value)
        assert sample.rescan_count >= 1
        # After the rescan the sample only contains live tuples.
        assert all(value >= 80 for value in sample.values())

    def test_version_changes_when_sample_changes(self):
        sample = BackingSample(5, seed=4)
        before = sample.version
        sample.insert(1)
        assert sample.version > before


class TestApproximateCompressedHistogram:
    def test_counts_track_the_relation(self):
        histogram = ApproximateCompressedHistogram(16, 200, seed=1)
        for value in range(500):
            histogram.insert(value % 90)
        assert histogram.total_count == pytest.approx(500, rel=0.01)

    def test_accuracy_on_clustered_data(self, small_values):
        histogram = ApproximateCompressedHistogram(32, 400, seed=2)
        truth = DataDistribution()
        for value in small_values:
            histogram.insert(float(value))
            truth.add(float(value))
        assert ks_statistic(truth, histogram, value_unit=1.0) < 0.15

    def test_larger_sample_is_more_accurate_on_average(self, small_values):
        errors = {}
        for capacity in (50, 1000):
            total = 0.0
            for seed in range(3):
                histogram = ApproximateCompressedHistogram(32, capacity, seed=seed)
                truth = DataDistribution()
                for value in small_values:
                    histogram.insert(float(value))
                    truth.add(float(value))
                total += ks_statistic(truth, histogram, value_unit=1.0)
            errors[capacity] = total / 3
        assert errors[1000] <= errors[50]

    def test_deletions_are_supported(self, uniform_values):
        histogram = ApproximateCompressedHistogram(16, 300, seed=3)
        for value in uniform_values:
            histogram.insert(float(value))
        for value in uniform_values[:300]:
            histogram.delete(float(value))
        assert histogram.total_count == pytest.approx(len(uniform_values) - 300, rel=0.02)

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            ApproximateCompressedHistogram(8, 100, gamma=-2.0)

    def test_split_merge_mode_with_positive_gamma(self, uniform_values):
        histogram = ApproximateCompressedHistogram(16, 300, gamma=0.5, seed=4)
        truth = DataDistribution()
        for value in uniform_values:
            histogram.insert(float(value))
            truth.add(float(value))
        assert histogram.total_count == pytest.approx(len(uniform_values), rel=0.05)
        assert ks_statistic(truth, histogram, value_unit=1.0) < 0.3

    def test_lazy_recompute_counter(self):
        histogram = ApproximateCompressedHistogram(8, 50, seed=5)
        for value in range(200):
            histogram.insert(value)
        first_read = histogram.recompute_count
        histogram.buckets()
        histogram.buckets()
        # Reads without sample changes must not trigger new recomputations.
        assert histogram.recompute_count == max(first_read, 1)
