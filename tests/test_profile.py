"""Tests for profiling hooks and process self-telemetry (PR 8).

Covers:

* :class:`repro.obs.profile.PhaseTimer` accumulation and reporting;
* :class:`repro.obs.profile.SamplingProfiler` lifecycle, busy-thread
  attribution (a spinning function must dominate the collapsed stacks) and
  thread-id filtering;
* :mod:`repro.obs.process`: RSS reading and the vitals gauges;
* the ``profile=`` knob and ``GET /profile`` route on both server kinds;
* process self-telemetry riding along on ``GET /metrics`` for both kinds.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import (
    ClusterClient,
    ClusterCoordinator,
    ClusterServer,
    HistogramStore,
    StatisticsClient,
    StatisticsServer,
)
from repro.cluster import LocalShard
from repro.obs import MetricsRegistry, PhaseTimer, SamplingProfiler
from repro.obs.process import ProcessTelemetry, read_rss_bytes


class TestPhaseTimer:
    def test_phases_accumulate_and_report(self):
        timer = PhaseTimer()
        with timer.phase("setup"):
            time.sleep(0.01)
        for _ in range(2):
            with timer.phase("run"):
                time.sleep(0.005)
        report = timer.report()
        assert set(report) == {"setup", "run"}
        assert report["setup"]["count"] == 1
        assert report["run"]["count"] == 2
        assert report["run"]["seconds"] >= 0.008
        assert report["run"]["last_seconds"] <= report["run"]["seconds"]

    def test_exception_still_records_phase(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("boom"):
                raise RuntimeError("x")
        assert timer.report()["boom"]["count"] == 1


def _spin_busy(stop: threading.Event) -> None:
    # A distinctive function name the profiler must attribute samples to.
    total = 0
    while not stop.is_set():
        total += sum(range(200))


class TestSamplingProfiler:
    def test_busy_thread_dominates_attribution(self):
        stop = threading.Event()
        worker = threading.Thread(target=_spin_busy, args=(stop,))
        worker.start()
        try:
            with SamplingProfiler(interval_s=0.002) as profiler:
                time.sleep(0.25)
        finally:
            stop.set()
            worker.join()
        attribution = profiler.attribution()
        assert attribution["samples"] >= 10
        functions = [entry["function"] for entry in attribution["hot_functions"]]
        assert any("_spin_busy" in name for name in functions), functions
        # Collapsed stacks are root-first "file:func;..." strings.
        top_stack = attribution["hot_stacks"][0]["stack"]
        assert ";" in top_stack or ":" in top_stack
        assert attribution["hot_stacks"][0]["samples"] <= attribution["samples"]

    def test_lifecycle_idempotent_and_running_flag(self):
        profiler = SamplingProfiler(interval_s=0.005)
        assert not profiler.running
        profiler.start()
        profiler.start()  # idempotent
        assert profiler.running
        profiler.stop()
        profiler.stop()  # idempotent
        assert not profiler.running
        # Elapsed time is preserved across a stop.
        assert profiler.attribution()["elapsed_s"] >= 0.0

    def test_thread_id_filter_excludes_other_threads(self):
        stop = threading.Event()
        worker = threading.Thread(target=_spin_busy, args=(stop,))
        worker.start()
        try:
            profiler = SamplingProfiler(
                interval_s=0.002, thread_ids=frozenset({worker.ident})
            )
            with profiler:
                time.sleep(0.1)
        finally:
            stop.set()
            worker.join()
        attribution = profiler.attribution()
        for entry in attribution["hot_stacks"]:
            assert "_spin_busy" in entry["stack"], entry

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=0.0)


class TestProcessTelemetry:
    def test_read_rss_bytes_is_plausible(self):
        rss = read_rss_bytes()
        # The test process maps well over 10 MB and under 100 GB.
        assert rss is not None
        assert 10 * 1024 * 1024 < rss < 100 * 1024 * 1024 * 1024

    def test_update_sets_vitals_gauges(self):
        registry = MetricsRegistry()
        telemetry = ProcessTelemetry(registry)
        telemetry.update()
        text = registry.render()
        assert "repro_process_resident_memory_bytes" in text
        assert 'repro_process_gc_collections{generation="0"}' in text
        assert 'repro_process_gc_collections{generation="2"}' in text
        assert "repro_process_threads" in text
        assert "repro_process_uptime_seconds" in text
        assert "repro_build_info{python=" in text

    def test_reconstruction_over_same_registry_is_safe(self):
        registry = MetricsRegistry()
        ProcessTelemetry(registry)
        ProcessTelemetry(registry).update()  # get-or-create, no duplicate error


class TestServiceServerProfile:
    def test_metrics_carries_process_vitals(self):
        registry = MetricsRegistry()
        store = HistogramStore(metrics=registry)
        with StatisticsServer(store, metrics=registry) as server:
            client = StatisticsClient(*server.address)
            text = client.metrics_text()
        assert "repro_process_resident_memory_bytes" in text
        assert "repro_process_threads" in text
        assert "repro_build_info{python=" in text

    def test_profile_route_404_when_disabled(self):
        with StatisticsServer(HistogramStore()) as server:
            client = StatisticsClient(*server.address)
            from repro.exceptions import ServiceError

            with pytest.raises(ServiceError):
                client._request("GET", "/profile")

    def test_profile_knob_serves_attribution_and_stops_cleanly(self):
        server = StatisticsServer(HistogramStore(), profile=0.002)
        with server:
            client = StatisticsClient(*server.address)
            client.create("age", "dc", memory_kb=0.5)
            client.ingest("age", insert=[float(v % 90) for v in range(5000)])
            time.sleep(0.05)
            profile = client._request("GET", "/profile")
            assert profile["samples"] > 0
            assert profile["interval_s"] == pytest.approx(0.002)
            assert isinstance(profile["hot_stacks"], list)
        assert server.profiler is not None
        assert not server.profiler.running


class TestClusterServerProfile:
    def _cluster(self, registry=None):
        shards = [
            LocalShard("shard-0", HistogramStore(metrics=registry)),
            LocalShard("shard-1", HistogramStore(metrics=registry)),
        ]
        return ClusterCoordinator(shards, metrics=registry)

    def test_metrics_carries_process_vitals(self):
        registry = MetricsRegistry()
        with ClusterServer(self._cluster(registry), metrics=registry) as server:
            client = ClusterClient(*server.address)
            text = client.metrics_text()
        assert "repro_process_resident_memory_bytes" in text
        assert "repro_build_info{python=" in text

    def test_profile_knob_serves_attribution(self):
        server = ClusterServer(self._cluster(), profile=0.002)
        with server:
            client = ClusterClient(*server.address)
            client.create("age", "dc", memory_kb=0.5)
            client.ingest("age", insert=[float(v % 90) for v in range(3000)])
            time.sleep(0.05)
            profile = client._request("GET", "/profile")
            assert profile["samples"] > 0
        assert not server.profiler.running

    def test_profile_route_404_when_disabled(self):
        with ClusterServer(self._cluster()) as server:
            client = ClusterClient(*server.address)
            from repro.exceptions import ServiceError

            with pytest.raises(ServiceError):
                client._request("GET", "/profile")
