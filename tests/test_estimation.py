"""Unit tests for predicates and the selectivity estimator."""

import pytest

from repro import (
    Between,
    DataDistribution,
    EquiDepthHistogram,
    Equals,
    ExactHistogram,
    SelectivityEstimator,
)
from repro.estimation import And, GreaterOrEqual, GreaterThan, LessOrEqual, LessThan
from repro.exceptions import ConfigurationError


class TestPredicates:
    def test_equals(self):
        predicate = Equals(5.0)
        assert predicate.interval() == (5.0, 5.0)
        assert predicate.matches(5.0)
        assert not predicate.matches(5.1)

    def test_between(self):
        predicate = Between(2.0, 8.0)
        assert predicate.matches(2.0)
        assert predicate.matches(8.0)
        assert not predicate.matches(8.1)
        with pytest.raises(ConfigurationError):
            Between(8.0, 2.0)

    def test_one_sided_predicates(self):
        assert LessOrEqual(4.0).matches(4.0)
        assert not LessThan(4.0).matches(4.0)
        assert GreaterOrEqual(4.0).matches(4.0)
        assert not GreaterThan(4.0).matches(4.0)
        low, high = LessThan(4.0).interval()
        assert high < 4.0
        low, high = GreaterThan(4.0).interval()
        assert low > 4.0

    def test_conjunction_intersects_intervals(self):
        predicate = GreaterOrEqual(2.0) & LessOrEqual(10.0)
        assert isinstance(predicate, And)
        assert predicate.interval() == (2.0, 10.0)
        assert predicate.matches(5.0)
        assert not predicate.matches(11.0)

    def test_empty_conjunction_rejected(self):
        with pytest.raises(ConfigurationError):
            And([])


class TestSelectivityEstimator:
    @pytest.fixture
    def truth(self):
        return DataDistribution(list(range(100)) + [50] * 100)

    def test_exact_histogram_estimates_are_exact(self, truth):
        estimator = SelectivityEstimator(ExactHistogram.build(truth))
        report = estimator.report(Between(20, 40), truth=truth)
        assert report.estimated_count == pytest.approx(report.true_count)
        assert report.relative_error == pytest.approx(0.0)

    def test_equality_predicate_on_heavy_value(self, truth):
        estimator = SelectivityEstimator(ExactHistogram.build(truth))
        report = estimator.report(Equals(50.0), truth=truth)
        assert report.true_count == 101
        assert report.estimated_count == pytest.approx(101)

    def test_open_range_clamped_to_domain(self, truth):
        estimator = SelectivityEstimator(EquiDepthHistogram.build(truth, 10))
        report = estimator.report(LessOrEqual(1000.0), truth=truth)
        assert report.estimated_count == pytest.approx(truth.total_count, rel=0.01)
        assert report.estimated_selectivity == pytest.approx(1.0, rel=0.01)

    def test_range_outside_domain_is_zero(self, truth):
        estimator = SelectivityEstimator(EquiDepthHistogram.build(truth, 10))
        assert estimator.estimate_count(Between(500.0, 600.0)) == 0.0

    def test_estimates_are_reasonable_for_equi_depth(self, truth):
        estimator = SelectivityEstimator(EquiDepthHistogram.build(truth, 20))
        report = estimator.report(Between(10, 30), truth=truth)
        assert report.absolute_error is not None
        assert report.absolute_error <= 0.2 * truth.total_count

    def test_report_many(self, truth):
        estimator = SelectivityEstimator(EquiDepthHistogram.build(truth, 10))
        reports = estimator.report_many([Between(0, 10), Equals(50.0)], truth=truth)
        assert len(reports) == 2
        assert all(r.estimated_count >= 0 for r in reports)

    def test_report_without_truth_has_no_errors(self, truth):
        estimator = SelectivityEstimator(EquiDepthHistogram.build(truth, 10))
        report = estimator.report(Between(0, 10))
        assert report.true_count is None
        assert report.absolute_error is None
        assert report.relative_error is None

    def test_invalid_value_unit(self, truth):
        with pytest.raises(ValueError):
            SelectivityEstimator(ExactHistogram.build(truth), value_unit=0.0)
