"""Unit tests for the Dynamic Compressed (DC) histogram (Section 3)."""

import numpy as np
import pytest

from repro import DataDistribution, DCHistogram, ks_statistic
from repro.exceptions import ConfigurationError, DeletionError


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            DCHistogram(0)
        with pytest.raises(ConfigurationError):
            DCHistogram(10, alpha_min=2.0)
        with pytest.raises(ConfigurationError):
            DCHistogram(10, value_unit=0.0)

    def test_accessors(self):
        histogram = DCHistogram(16, alpha_min=1e-4)
        assert histogram.bucket_budget == 16
        assert histogram.alpha_min == 1e-4
        assert histogram.repartition_count == 0
        assert histogram.is_loading


class TestLoadingPhase:
    def test_loading_buffers_distinct_points(self):
        histogram = DCHistogram(8)
        for value in [5, 5, 5, 7]:
            histogram.insert(value)
        assert histogram.is_loading
        assert histogram.total_count == 4
        assert histogram.bucket_count == 2  # point masses while loading

    def test_loading_ends_at_budget_distinct_values(self):
        histogram = DCHistogram(8)
        for value in range(8):
            histogram.insert(value)
        assert not histogram.is_loading
        assert histogram.total_count == pytest.approx(8)

    def test_delete_during_loading(self):
        histogram = DCHistogram(8)
        histogram.insert(5)
        histogram.insert(5)
        histogram.delete(5)
        assert histogram.total_count == 1
        histogram.delete(5)
        with pytest.raises(DeletionError):
            histogram.delete(5)


class TestInsertions:
    def test_count_is_conserved(self, uniform_values):
        histogram = DCHistogram(32)
        for value in uniform_values:
            histogram.insert(float(value))
        assert histogram.total_count == pytest.approx(len(uniform_values), rel=1e-9)

    def test_out_of_range_values_extend_end_buckets(self):
        histogram = DCHistogram(4)
        for value in [10, 20, 30, 40]:
            histogram.insert(value)
        histogram.insert(5)
        histogram.insert(100)
        assert histogram.min_value <= 5
        assert histogram.max_value >= 100
        assert histogram.total_count == pytest.approx(6)

    def test_repartitioning_occurs_under_skewed_load(self, rng):
        histogram = DCHistogram(16, alpha_min=1e-6)
        values = np.concatenate(
            [np.arange(16), rng.integers(3, 5, size=3000)]  # hammer a narrow region
        )
        for value in values:
            histogram.insert(float(value))
        assert histogram.repartition_count > 0
        assert histogram.total_count == pytest.approx(len(values), rel=1e-6)

    def test_repartitioning_keeps_regular_counts_balanced(self, rng):
        histogram = DCHistogram(16, alpha_min=1e-3)
        values = rng.integers(0, 50, size=4000)
        for value in values:
            histogram.insert(float(value))
        buckets = histogram.buckets()
        regular_counts = [b.count for b in buckets if not b.is_point_mass and b.count > 0]
        # After (possibly many) repartitions the spread of regular counts must
        # stay well below the total count.
        assert max(regular_counts) - min(regular_counts) < histogram.total_count / 2

    def test_lower_alpha_min_means_fewer_repartitions(self, rng):
        values = rng.integers(0, 80, size=4000)
        eager = DCHistogram(16, alpha_min=1e-2)
        lazy = DCHistogram(16, alpha_min=1e-12)
        for value in values:
            eager.insert(float(value))
            lazy.insert(float(value))
        assert lazy.repartition_count <= eager.repartition_count

    def test_accuracy_on_uniform_data(self, uniform_values):
        histogram = DCHistogram(64)
        truth = DataDistribution()
        for value in uniform_values:
            histogram.insert(float(value))
            truth.add(float(value))
        assert ks_statistic(truth, histogram, value_unit=1.0) < 0.05


class TestSingularBuckets:
    def test_heavy_value_becomes_singular(self, rng):
        histogram = DCHistogram(16)
        background = rng.integers(0, 100, size=2000)
        heavy = np.full(1500, 42)
        for value in np.concatenate([background, heavy]):
            histogram.insert(float(value))
        assert histogram.singular_value_count >= 1
        singular_values = [b.left for b in histogram.buckets() if b.is_point_mass]
        assert 42.0 in singular_values

    def test_estimate_of_heavy_value_is_accurate(self, rng):
        histogram = DCHistogram(16)
        background = rng.integers(0, 100, size=2000)
        heavy = np.full(1500, 42)
        truth = DataDistribution()
        for value in np.concatenate([background, heavy]):
            histogram.insert(float(value))
            truth.add(float(value))
        estimated = histogram.estimate_equal(42.0)
        assert estimated == pytest.approx(truth.frequency(42.0), rel=0.35)


class TestDeletions:
    def test_delete_reverses_insert(self, uniform_values):
        histogram = DCHistogram(32)
        for value in uniform_values:
            histogram.insert(float(value))
        for value in uniform_values[:500]:
            histogram.delete(float(value))
        assert histogram.total_count == pytest.approx(len(uniform_values) - 500, rel=1e-9)

    def test_delete_from_empty_histogram_raises(self):
        histogram = DCHistogram(4)
        for value in [1, 2, 3, 4]:
            histogram.insert(value)
        for value in [1, 2, 3, 4]:
            histogram.delete(value)
        with pytest.raises(DeletionError):
            histogram.delete(1)

    def test_delete_spills_to_closest_bucket(self):
        histogram = DCHistogram(4)
        for value in [10, 20, 30, 40]:
            histogram.insert(value)
        # Bucket around 40 has a single point; delete it twice -- the second
        # delete must spill to a neighbouring bucket instead of failing.
        histogram.delete(40)
        histogram.delete(40)
        assert histogram.total_count == pytest.approx(2)


class TestInsertMany:
    def test_interval_one_matches_per_value_inserts(self, uniform_values):
        looped = DCHistogram(24)
        batched = DCHistogram(24)
        for value in uniform_values:
            looped.insert(float(value))
        batched.insert_many([float(value) for value in uniform_values])
        assert batched.total_count == pytest.approx(looped.total_count)
        assert batched.repartition_count == looped.repartition_count
        for a, b in zip(batched.buckets(), looped.buckets(), strict=True):
            assert a.left == pytest.approx(b.left)
            assert a.right == pytest.approx(b.right)
            assert a.count == pytest.approx(b.count)

    def test_batched_interval_preserves_total_and_accuracy(self, uniform_values):
        truth = DataDistribution(uniform_values)
        histogram = DCHistogram(24)
        histogram.insert_many(
            [float(value) for value in uniform_values], repartition_interval=16
        )
        assert histogram.total_count == pytest.approx(len(uniform_values))
        assert ks_statistic(truth, histogram, value_unit=1.0) < 0.1

    def test_batched_insert_refreshes_cached_view(self):
        histogram = DCHistogram(8)
        histogram.insert_many([float(v) for v in range(20)], repartition_interval=4)
        before = histogram.total_count
        histogram.insert_many([3.0, 4.0], repartition_interval=4)
        assert histogram.total_count == pytest.approx(before + 2)

    def test_invalid_interval_rejected(self):
        histogram = DCHistogram(8)
        with pytest.raises(ConfigurationError):
            histogram.insert_many([1.0], repartition_interval=0)
