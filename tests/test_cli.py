"""Unit tests for the repro-experiments command-line interface."""

import io

import pytest

from repro.cli import available_experiments, main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestRegistry:
    def test_all_figures_and_ablations_are_registered(self):
        registry = available_experiments()
        for figure in range(5, 24):
            assert f"fig{figure:02d}" in registry
        assert "ablation_alpha_min" in registry
        assert "ablation_sub_buckets" in registry
        assert "ablation_repartition_threshold" in registry


class TestListCommand:
    def test_list_prints_every_experiment(self):
        code, output = _run(["list"])
        assert code == 0
        assert "fig05" in output
        assert "fig23" in output
        assert "ablation_alpha_min" in output


class TestRunCommand:
    def test_run_single_figure(self, tmp_path):
        code, output = _run(
            [
                "run",
                "fig22",
                "--scale",
                "0.01",
                "--runs",
                "1",
                "--csv-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert "fig22" in output
        assert "histogram + union" in output
        assert (tmp_path / "fig22.csv").exists()

    def test_run_unknown_experiment_fails_cleanly(self):
        code, output = _run(["run", "fig99"])
        assert code == 2
        assert "unknown experiment" in output

    def test_run_requires_arguments(self):
        with pytest.raises(SystemExit):
            main(["run"])


class TestCompareCommand:
    def test_compare_prints_leaderboard(self):
        code, output = _run(["compare", "--scale", "0.02", "--memory-kb", "0.25"])
        assert code == 0
        assert "DADO" in output
        assert "EQUI_WIDTH" in output
        assert "KS statistic" in output


class TestServeCommand:
    def test_serve_binds_and_exits_after_duration(self):
        code, output = _run(
            [
                "serve",
                "--port",
                "0",
                "--attribute",
                "age:dc:0.5",
                "-a",
                "price:dado",
                "--duration",
                "0.05",
            ]
        )
        assert code == 0
        assert "statistics service listening on http://127.0.0.1:" in output
        assert "attributes: age, price" in output

    def test_serve_accepts_live_requests(self):
        import io
        import re
        import threading
        import time

        from repro.service import StatisticsClient

        out = io.StringIO()
        thread = threading.Thread(
            target=main,
            args=(["serve", "--port", "0", "-a", "age:dc:0.5", "--duration", "1.5"],),
            kwargs={"out": out},
        )
        thread.start()
        try:
            deadline = time.time() + 5.0
            match = None
            while match is None and time.time() < deadline:
                match = re.search(r"http://127\.0\.0\.1:(\d+)", out.getvalue())
                if match is None:
                    time.sleep(0.01)
            assert match is not None, "server never reported its address"
            client = StatisticsClient("127.0.0.1", int(match.group(1)))
            client.ingest("age", insert=[float(v % 50) for v in range(500)])
            deadline = time.time() + 5.0
            while client.total_count("age") < 500 and time.time() < deadline:
                time.sleep(0.01)
            assert client.total_count("age") == pytest.approx(500.0)
        finally:
            thread.join(timeout=30)
        assert not thread.is_alive()

    def test_serve_rejects_bad_attribute_spec(self):
        code, output = _run(["serve", "--port", "0", "-a", "a:b:c:d", "--duration", "0"])
        assert code == 2
        assert "invalid attribute spec" in output


class TestStoreStatsCommand:
    def test_store_stats_pretty_prints_live_server(self):
        from repro.service import HistogramStore, StatisticsServer

        store = HistogramStore()
        store.create("age", "dc", memory_kb=0.5)
        store.insert("age", [float(v % 90) for v in range(2000)])
        with StatisticsServer(store) as server:
            host, port = server.address
            code, output = _run(["store-stats", "--host", host, "--port", str(port)])
        assert code == 0
        assert "age" in output
        assert "serving" in output
        assert "2000" in output

    def test_store_stats_unreachable_server_fails_cleanly(self):
        code, output = _run(["store-stats", "--port", "1"])
        assert code == 2
        assert "cannot reach statistics server" in output


class TestFormatStoreStats:
    def test_format_contains_all_columns(self):
        from repro.cli import format_store_stats
        from repro.service import HistogramStore

        store = HistogramStore()
        store.create("age", "dc", memory_kb=0.5)
        store.insert("age", [1.0, 2.0, 3.0])
        table = format_store_stats([s.to_dict() for s in store.stats_all()])
        assert "attribute" in table
        assert "age" in table
        assert "dc" in table


class TestServeClusterCommand:
    def test_serve_cluster_binds_and_exits_after_duration(self):
        code, output = _run(
            [
                "serve-cluster",
                "--port", "0",
                "--shards", "3",
                "-a", "age:dc:0.5",
                "-p", "hot:100,200",
                "--duration", "0.05",
            ]
        )
        assert code == 0
        assert "statistics cluster listening on http://127.0.0.1:" in output
        assert "shards: shard-0, shard-1, shard-2" in output
        assert "age" in output and "hot (partitioned)" in output

    def test_serve_cluster_accepts_live_requests(self):
        import io
        import re
        import threading
        import time

        from repro.cluster import ClusterClient

        out = io.StringIO()
        thread = threading.Thread(
            target=main,
            args=(
                ["serve-cluster", "--port", "0", "--shards", "2",
                 "-p", "hot:500", "--duration", "1.5"],
            ),
            kwargs={"out": out},
        )
        thread.start()
        try:
            deadline = time.time() + 5.0
            match = None
            while match is None and time.time() < deadline:
                match = re.search(r"http://127\.0\.0\.1:(\d+)", out.getvalue())
                if match is None:
                    time.sleep(0.01)
            assert match is not None, "cluster server never reported its address"
            client = ClusterClient("127.0.0.1", int(match.group(1)))
            client.ingest("hot", insert=[float(v % 1000) for v in range(400)])
            assert client.total_count("hot") == pytest.approx(400.0)
            stats = client.cluster_stats()
            assert "hot" in stats["placement"]["partitions"]
        finally:
            thread.join(timeout=30)
        assert not thread.is_alive()

    def test_serve_cluster_rejects_bad_partition_spec(self):
        code, output = _run(
            ["serve-cluster", "--port", "0", "-p", "hot:abc", "--duration", "0"]
        )
        assert code == 2
        assert "invalid partition spec" in output

    def test_serve_cluster_rejects_zero_shards(self):
        code, output = _run(["serve-cluster", "--shards", "0", "--duration", "0"])
        assert code == 2
        assert "--shards" in output

    def test_serve_cluster_rejects_zero_spawn_shards(self):
        code, output = _run(
            ["serve-cluster", "--spawn-shards", "0", "--duration", "0"]
        )
        assert code == 2
        assert "--spawn-shards" in output

    def test_serve_cluster_interrupt_during_duration_tears_down(self, monkeypatch):
        """Regression: Ctrl-C while sleeping out ``--duration`` must still
        run the shutdown path.  Before the fix the sleep had no try/finally,
        so the fan-out executor's non-daemon threads survived the
        KeyboardInterrupt and the process could never exit cleanly.
        """
        import threading
        import time as time_module

        real_sleep = time_module.sleep
        sentinel = 987.0

        def interrupting_sleep(seconds):
            if seconds == sentinel:
                raise KeyboardInterrupt
            real_sleep(seconds)

        monkeypatch.setattr("repro.cli.time.sleep", interrupting_sleep)
        with pytest.raises(KeyboardInterrupt):
            _run(
                ["serve-cluster", "--port", "0", "--shards", "2",
                 "-a", "age:dc:0.5", "--duration", str(sentinel)]
            )
        leaked = [
            thread
            for thread in threading.enumerate()
            if not thread.daemon and thread.name.startswith("repro-")
        ]
        assert leaked == []

    def test_serve_cluster_spawn_shards_runs_worker_processes(self, tmp_path):
        code, output = _run(
            ["serve-cluster", "--port", "0", "--spawn-shards", "2",
             "-a", "age:dc:0.5", "--duration", "0.05",
             "--wal-dir", str(tmp_path / "wal")]
        )
        assert code == 0
        assert "statistics cluster listening on http://127.0.0.1:" in output
        # The fleet line reports real processes, not in-process shards.
        assert "shard-0 (pid " in output and "shard-1 (pid " in output
        assert "worker-owned" in output
        # Each worker opened its own WAL under the shared root.
        assert (tmp_path / "wal" / "shard-0" / "wal.log").exists()
        assert (tmp_path / "wal" / "shard-1" / "wal.log").exists()


class TestDurableServe:
    def test_serve_wal_dir_recovers_catalog_across_restarts(self, tmp_path):
        from repro.service import HistogramStore

        wal_dir = tmp_path / "wal"
        # First life: create + ingest durably, then "crash" (exit).
        code, output = _run(
            ["serve", "--port", "0", "-a", "age:dc:0.5",
             "--flush-interval", "0", "--duration", "0.05",
             "--wal-dir", str(wal_dir)]
        )
        assert code == 0
        assert "fresh log" in output
        store = HistogramStore.recover(wal_dir)
        store.insert("age", [float(v % 50) for v in range(200)])
        store.close()
        # Second life: the catalog comes back with its data.
        code, output = _run(
            ["serve", "--port", "0", "--flush-interval", "0",
             "--duration", "0.05", "--wal-dir", str(wal_dir)]
        )
        assert code == 0
        assert "recovered existing catalog" in output
        assert "attributes: age" in output

    def test_serve_cluster_replication_and_wal_flags(self, tmp_path):
        code, output = _run(
            ["serve-cluster", "--port", "0", "--shards", "3",
             "--replication-factor", "2", "-a", "age:dc:0.5",
             "--wal-dir", str(tmp_path / "cluster-wal"), "--duration", "0.05"]
        )
        assert code == 0
        assert "replication factor: 2" in output
        assert "per-shard WALs" in output
        assert (tmp_path / "cluster-wal" / "shard-0" / "wal.log").exists()

    def test_serve_cluster_rejects_bad_replication_factor(self):
        code, output = _run(
            ["serve-cluster", "--shards", "2", "--replication-factor", "3",
             "--duration", "0"]
        )
        assert code == 2
        assert "--replication-factor" in output


class TestResyncCommand:
    def test_resync_heals_a_stale_replica_over_http(self):
        from repro.cluster import ClusterCoordinator, ClusterServer, LocalShard, ShardRouter
        from fault_injection import FlakyShard

        shards = [FlakyShard(LocalShard(f"shard-{i}")) for i in range(3)]
        router = ShardRouter([s.shard_id for s in shards], replication_factor=2)
        coordinator = ClusterCoordinator(shards, router=router)
        coordinator.create("age", "dc", memory_kb=0.5)
        primary_id, follower_id = coordinator.router.replicas_for("age")
        by_id = {s.shard_id: s for s in shards}
        by_id[follower_id].down = True
        coordinator.ingest("age", insert=[float(v) for v in range(100)])
        by_id[follower_id].down = False
        with ClusterServer(coordinator) as server:
            host, port = server.address
            code, output = _run(["resync", follower_id, "--host", host, "--port", str(port)])
        assert code == 0
        assert f"age <- {primary_id}" in output
        assert by_id[follower_id].inner.store.total_count("age") == pytest.approx(100.0)

    def test_resync_unreachable_server_fails_cleanly(self):
        code, output = _run(["resync", "shard-0", "--port", "1"])
        assert code == 2
        assert "failed" in output


class TestClusterStatsCommand:
    def test_cluster_stats_pretty_prints_live_cluster(self):
        from repro.cluster import ClusterCoordinator, ClusterServer, LocalShard

        coordinator = ClusterCoordinator([LocalShard("shard-0"), LocalShard("shard-1")])
        coordinator.create("age", "dc", memory_kb=0.5)
        coordinator.create("hot", "dc", partition_boundaries=[100.0])
        coordinator.ingest("hot", insert=[50.0, 150.0])
        coordinator.total_count("hot")
        with ClusterServer(coordinator) as server:
            host, port = server.address
            code, output = _run(["cluster-stats", "--host", host, "--port", str(port)])
        assert code == 0
        assert "2 shard(s)" in output
        assert "[shard-0]" in output and "[shard-1]" in output
        assert "range partitions:" in output
        assert "merged global histograms (cached):" in output

    def test_cluster_stats_unreachable_server_fails_cleanly(self):
        code, output = _run(["cluster-stats", "--port", "1"])
        assert code == 2
        assert "cannot reach cluster server" in output


class TestMetricsWatchCommand:
    def _serving(self):
        from repro.obs import MetricsRegistry
        from repro.service import HistogramStore, StatisticsServer

        registry = MetricsRegistry()
        store = HistogramStore(metrics=registry)
        return StatisticsServer(store, metrics=registry)

    def test_watch_reports_counter_deltas_and_gauge_values(self):
        import threading
        import time

        from repro.service import StatisticsClient

        with self._serving() as server:
            host, port = server.address
            client = StatisticsClient(host, port)
            client.create("age", "dc", memory_kb=0.5)

            def churn():
                for _ in range(10):
                    client.ingest("age", insert=[1.0, 2.0, 3.0])
                    time.sleep(0.02)

            worker = threading.Thread(target=churn)
            worker.start()
            code, output = _run(
                ["metrics", "--host", host, "--port", str(port), "--watch", "0.3"]
            )
            worker.join()
        assert code == 0
        assert "metrics delta over" in output
        # Counters that moved show a signed delta and a rate.
        assert "repro_store_mutations_total" in output
        assert "+" in output
        # Gauges show current values, not deltas.
        assert "repro_process_threads" in output
        # Histogram bucket series are folded away.
        assert "_bucket" not in output

    def test_watch_rejects_nonpositive_interval(self):
        with self._serving() as server:
            host, port = server.address
            code, output = _run(
                ["metrics", "--host", host, "--port", str(port), "--watch", "0"]
            )
        assert code == 2
        assert "positive" in output

    def test_watch_unreachable_server_fails_cleanly(self):
        code, output = _run(["metrics", "--port", "1", "--watch", "0.1"])
        assert code == 2
        assert "cannot reach server" in output

    def test_parse_exposition_roundtrip(self):
        from repro.cli import parse_exposition

        text = (
            "# HELP x_total help\n"
            "# TYPE x_total counter\n"
            'x_total{a="1"} 5\n'
            "# TYPE y gauge\n"
            "y 2.5\n"
        )
        types, samples = parse_exposition(text)
        assert types == {"x_total": "counter", "y": "gauge"}
        assert samples == {'x_total{a="1"}': 5.0, "y": 2.5}


class TestServeProfileFlag:
    def test_serve_with_profile_exposes_attribution(self):
        import io
        import re
        import threading
        import time

        from repro.service import StatisticsClient

        out = io.StringIO()
        done = threading.Event()

        def run_server():
            main(
                [
                    "serve", "--port", "0", "--duration", "0.8",
                    "--attribute", "age:dc:0.5", "--profile",
                ],
                out=out,
            )
            done.set()

        thread = threading.Thread(target=run_server)
        thread.start()
        try:
            deadline = time.time() + 5.0
            port = None
            while time.time() < deadline and port is None:
                match = re.search(r"http://[\d.]+:(\d+)", out.getvalue())
                if match:
                    port = int(match.group(1))
                else:
                    time.sleep(0.02)
            assert port is not None, out.getvalue()
            client = StatisticsClient("127.0.0.1", port)
            client.ingest("age", insert=[float(v % 90) for v in range(2000)])
            profile = client._request("GET", "/profile")
            assert "samples" in profile and "hot_stacks" in profile
        finally:
            assert done.wait(10.0)
            thread.join()
