"""Unit tests for the repro-experiments command-line interface."""

import io

import pytest

from repro.cli import available_experiments, main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestRegistry:
    def test_all_figures_and_ablations_are_registered(self):
        registry = available_experiments()
        for figure in range(5, 24):
            assert f"fig{figure:02d}" in registry
        assert "ablation_alpha_min" in registry
        assert "ablation_sub_buckets" in registry
        assert "ablation_repartition_threshold" in registry


class TestListCommand:
    def test_list_prints_every_experiment(self):
        code, output = _run(["list"])
        assert code == 0
        assert "fig05" in output
        assert "fig23" in output
        assert "ablation_alpha_min" in output


class TestRunCommand:
    def test_run_single_figure(self, tmp_path):
        code, output = _run(
            [
                "run",
                "fig22",
                "--scale",
                "0.01",
                "--runs",
                "1",
                "--csv-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert "fig22" in output
        assert "histogram + union" in output
        assert (tmp_path / "fig22.csv").exists()

    def test_run_unknown_experiment_fails_cleanly(self):
        code, output = _run(["run", "fig99"])
        assert code == 2
        assert "unknown experiment" in output

    def test_run_requires_arguments(self):
        with pytest.raises(SystemExit):
            main(["run"])


class TestCompareCommand:
    def test_compare_prints_leaderboard(self):
        code, output = _run(["compare", "--scale", "0.02", "--memory-kb", "0.25"])
        assert code == 0
        assert "DADO" in output
        assert "EQUI_WIDTH" in output
        assert "KS statistic" in output
