"""Unit tests for the shared histogram read API (estimation, CDFs)."""

import numpy as np
import pytest

from repro import Bucket, EquiDepthHistogram
from repro.static.base import StaticHistogram


def _simple_histogram():
    """Two uniform buckets and one point mass, 100 points in total."""
    return StaticHistogram(
        [Bucket(0.0, 10.0, 40.0), Bucket(10.0, 20.0, 40.0), Bucket(25.0, 25.0, 20.0)]
    )


class TestReadAPI:
    def test_totals_and_bounds(self):
        histogram = _simple_histogram()
        assert histogram.total_count == 100.0
        assert histogram.bucket_count == 3
        assert histogram.min_value == 0.0
        assert histogram.max_value == 25.0

    def test_estimate_range(self):
        histogram = _simple_histogram()
        assert histogram.estimate_range(0.0, 10.0) == pytest.approx(40.0)
        assert histogram.estimate_range(5.0, 15.0) == pytest.approx(40.0)
        assert histogram.estimate_range(20.0, 30.0) == pytest.approx(20.0)
        assert histogram.estimate_range(30.0, 40.0) == 0.0
        assert histogram.estimate_range(10.0, 0.0) == 0.0

    def test_estimate_selectivity(self):
        histogram = _simple_histogram()
        assert histogram.estimate_selectivity(0.0, 10.0) == pytest.approx(0.4)

    def test_estimate_equal(self):
        histogram = _simple_histogram()
        # Density of the first bucket is 4 points per unit of value range.
        assert histogram.estimate_equal(5.0) == pytest.approx(4.0)
        assert histogram.estimate_equal(25.0) == pytest.approx(20.0)
        assert histogram.estimate_equal(100.0) == 0.0

    def test_estimate_equal_on_shared_border_counts_once(self):
        # Regression: a value lying exactly on the border shared by two
        # adjacent buckets used to satisfy ``left <= value <= right`` in both
        # and was double-counted.  The half-open convention counts it in the
        # right bucket only.
        histogram = StaticHistogram([Bucket(0.0, 10.0, 40.0), Bucket(10.0, 20.0, 60.0)])
        assert histogram.estimate_equal(10.0) == pytest.approx(6.0)

    def test_estimate_equal_last_bucket_right_border_still_counts(self):
        histogram = StaticHistogram([Bucket(0.0, 10.0, 40.0), Bucket(10.0, 20.0, 60.0)])
        assert histogram.estimate_equal(20.0) == pytest.approx(6.0)

    def test_estimate_equal_border_before_gap_still_counts(self):
        histogram = StaticHistogram([Bucket(0.0, 10.0, 40.0), Bucket(15.0, 20.0, 60.0)])
        assert histogram.estimate_equal(10.0) == pytest.approx(4.0)
        assert histogram.estimate_equal(12.0) == 0.0

    def test_estimate_equal_point_mass_on_border_adds_to_one_bucket_share(self):
        histogram = StaticHistogram(
            [Bucket(0.0, 10.0, 40.0), Bucket(10.0, 10.0, 7.0), Bucket(10.0, 20.0, 60.0)]
        )
        # The point mass contributes fully; the shared border density is
        # counted once (right bucket).
        assert histogram.estimate_equal(10.0) == pytest.approx(7.0 + 6.0)

    def test_cdf_monotone_and_bounded(self):
        histogram = _simple_histogram()
        xs = np.linspace(-5, 30, 200)
        cdf = histogram.cdf_many(xs)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[0] == 0.0
        assert cdf[-1] == pytest.approx(1.0)

    def test_cdf_left_limit_at_point_mass(self):
        histogram = _simple_histogram()
        right = histogram.cdf_many([25.0])[0]
        left = histogram.cdf_left_many([25.0])[0]
        assert right == pytest.approx(1.0)
        assert left == pytest.approx(0.8)

    def test_cdf_scalar_matches_vector(self):
        histogram = _simple_histogram()
        for x in (-1.0, 0.0, 7.5, 13.0, 25.0, 26.0):
            assert histogram.cdf(x) == pytest.approx(histogram.cdf_many([x])[0])

    def test_cdf_breakpoints(self):
        histogram = _simple_histogram()
        np.testing.assert_array_equal(
            histogram.cdf_breakpoints(), [0.0, 10.0, 20.0, 25.0]
        )

    def test_count_at_most(self):
        histogram = _simple_histogram()
        assert histogram.count_at_most(10.0) == pytest.approx(40.0)
        assert histogram.count_at_most(25.0) == pytest.approx(100.0)

    def test_to_distribution_preserves_total(self):
        histogram = _simple_histogram()
        dist = histogram.to_distribution()
        assert dist.total_count == 100

    def test_empty_histogram_errors(self):
        with pytest.raises(Exception):
            StaticHistogram([])

    def test_repr_contains_bucket_count(self, small_distribution):
        histogram = EquiDepthHistogram.build(small_distribution, 8)
        assert "buckets=" in repr(histogram)


class TestDynamicHistogramHelpers:
    def test_insert_many_and_apply(self, uniform_values):
        from repro import DCHistogram, UpdateStream

        histogram = DCHistogram(32)
        histogram.insert_many(float(v) for v in uniform_values[:500])
        assert histogram.total_count == pytest.approx(500, abs=1e-6)

        other = DCHistogram(32)
        other.apply(UpdateStream.inserts(float(v) for v in uniform_values[:500]))
        assert other.total_count == pytest.approx(500, abs=1e-6)
