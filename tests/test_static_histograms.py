"""Unit tests for the static histogram constructions (exact, EW, ED, SC)."""

import numpy as np
import pytest

from repro import (
    CompressedHistogram,
    DataDistribution,
    EquiDepthHistogram,
    EquiWidthHistogram,
    ExactHistogram,
    ks_statistic,
)
from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.static.equi_depth import equi_depth_partition


class TestExactHistogram:
    def test_one_bucket_per_distinct_value(self, skewed_distribution):
        histogram = ExactHistogram.build(skewed_distribution)
        assert histogram.bucket_count == skewed_distribution.distinct_count
        assert all(bucket.is_point_mass for bucket in histogram.buckets())

    def test_zero_ks(self, skewed_distribution):
        histogram = ExactHistogram.build(skewed_distribution)
        assert ks_statistic(skewed_distribution, histogram) == pytest.approx(0.0, abs=1e-12)

    def test_empty_distribution_rejected(self):
        with pytest.raises(InsufficientDataError):
            ExactHistogram.build(DataDistribution())


class TestEquiWidthHistogram:
    def test_equal_widths(self, small_distribution):
        histogram = EquiWidthHistogram.build(small_distribution, 10)
        widths = [bucket.width for bucket in histogram.buckets()]
        assert len(set(np.round(widths, 6))) == 1

    def test_count_preserved(self, small_distribution):
        histogram = EquiWidthHistogram.build(small_distribution, 10)
        assert histogram.total_count == pytest.approx(small_distribution.total_count)

    def test_single_value_distribution(self):
        histogram = EquiWidthHistogram.build(DataDistribution([7, 7, 7]), 5)
        assert histogram.bucket_count == 1
        assert histogram.total_count == 3

    def test_invalid_bucket_budget(self, small_distribution):
        with pytest.raises(ConfigurationError):
            EquiWidthHistogram.build(small_distribution, 0)


class TestEquiDepthPartition:
    def test_partition_covers_all_values(self):
        values = np.arange(20, dtype=float)
        freqs = np.ones(20)
        groups = equi_depth_partition(values, freqs, 5)
        assert groups[0][0] == 0
        assert groups[-1][1] == 19
        for (_start_a, end_a), (start_b, _end_b) in zip(groups, groups[1:], strict=False):
            assert start_b == end_a + 1

    def test_equal_counts_on_uniform_frequencies(self):
        values = np.arange(20, dtype=float)
        freqs = np.ones(20)
        groups = equi_depth_partition(values, freqs, 4)
        sizes = [freqs[start : end + 1].sum() for start, end in groups]
        assert sizes == [5, 5, 5, 5]

    def test_heavy_value_does_not_straddle_buckets(self):
        values = np.array([1.0, 2.0, 3.0])
        freqs = np.array([1.0, 100.0, 1.0])
        groups = equi_depth_partition(values, freqs, 3)
        # value 2.0 stays in exactly one group
        containing = [g for g in groups if g[0] <= 1 <= g[1]]
        assert len(containing) == 1

    def test_empty_input(self):
        assert equi_depth_partition(np.array([]), np.array([]), 4) == []


class TestEquiDepthHistogram:
    def test_counts_roughly_equal(self, small_distribution):
        histogram = EquiDepthHistogram.build(small_distribution, 10)
        counts = [bucket.count for bucket in histogram.buckets()]
        assert max(counts) <= 2.5 * (small_distribution.total_count / 10)

    def test_count_preserved(self, small_distribution):
        histogram = EquiDepthHistogram.build(small_distribution, 10)
        assert histogram.total_count == pytest.approx(small_distribution.total_count)

    def test_better_than_equi_width_on_skewed_data(self, small_distribution):
        equi_width = EquiWidthHistogram.build(small_distribution, 12)
        equi_depth = EquiDepthHistogram.build(small_distribution, 12)
        assert ks_statistic(small_distribution, equi_depth, value_unit=1.0) <= ks_statistic(
            small_distribution, equi_width, value_unit=1.0
        )

    def test_budget_larger_than_distinct_values(self):
        data = DataDistribution([1, 2, 3])
        histogram = EquiDepthHistogram.build(data, 50)
        assert histogram.bucket_count <= 3


class TestCompressedHistogram:
    def test_heavy_values_get_singleton_buckets(self, skewed_distribution):
        histogram = CompressedHistogram.build(skewed_distribution, 5)
        singletons = [b for b in histogram.buckets() if b.is_point_mass]
        assert any(b.left == 20.0 for b in singletons)

    def test_singleton_count_is_exact(self, skewed_distribution):
        histogram = CompressedHistogram.build(skewed_distribution, 5)
        singleton = next(b for b in histogram.buckets() if b.left == 20.0 and b.is_point_mass)
        assert singleton.count == skewed_distribution.frequency(20)

    def test_count_preserved(self, small_distribution):
        histogram = CompressedHistogram.build(small_distribution, 20)
        assert histogram.total_count == pytest.approx(small_distribution.total_count)

    def test_no_heavy_values_degenerates_to_equi_depth(self):
        data = DataDistribution(list(range(100)))
        compressed = CompressedHistogram.build(data, 10)
        equi_depth = EquiDepthHistogram.build(data, 10)
        assert compressed.bucket_count == equi_depth.bucket_count
        assert not any(b.is_point_mass for b in compressed.buckets())

    def test_beats_equi_depth_on_highly_skewed_data(self, rng):
        values = np.concatenate([rng.integers(0, 500, 2000), np.full(3000, 250)])
        truth = DataDistribution(values)
        compressed = CompressedHistogram.build(truth, 12)
        equi_depth = EquiDepthHistogram.build(truth, 12)
        assert ks_statistic(truth, compressed, value_unit=1.0) <= ks_statistic(
            truth, equi_depth, value_unit=1.0
        )
