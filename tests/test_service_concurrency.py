"""Concurrent correctness of the statistics service.

The store's contract under concurrency:

* writes are never lost: after N writer threads finish, every attribute's
  ``total_count`` equals exactly the number of values ingested into it;
* reads are never torn: a read-only batched query pins ONE published
  snapshot, so within one response the total count and the full-domain range
  estimate describe the same histogram state and must agree;
* read staleness is monotone: publications are ordered by the attribute
  lock, so the generations one reader observes for an attribute never go
  backwards;
* readers and writers make progress together (no deadlocks), including over
  the batching ingest pipeline and the HTTP server.
"""

import threading

import numpy as np
import pytest

from repro import HistogramStore, IngestPipeline, StatisticsClient, StatisticsServer

# Multi-threaded soak tests: excluded from the tier-1 run (pytest.ini),
# exercised by the scheduled slow-suite CI job.
pytestmark = pytest.mark.slow

ATTRIBUTES = ("age", "price", "score")
FULL_DOMAIN = {"op": "range", "low": -1e18, "high": 1e18}


def _run_threads(threads):
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads), "worker threads deadlocked"


@pytest.fixture
def store():
    s = HistogramStore()
    s.create("age", "dc", memory_kb=0.5)
    s.create("price", "dado", memory_kb=0.5)
    s.create("score", "dvo", memory_kb=0.5)
    return s


class TestConcurrentStore:
    N_WRITERS = 4
    N_READERS = 3
    BATCHES_PER_WRITER = 30
    BATCH_SIZE = 100

    def test_writers_and_readers_against_one_store(self, store):
        errors = []
        torn = []
        stop_reading = threading.Event()

        def writer(writer_index: int) -> None:
            rng = np.random.default_rng(1000 + writer_index)
            try:
                for batch_index in range(self.BATCHES_PER_WRITER):
                    name = ATTRIBUTES[(writer_index + batch_index) % len(ATTRIBUTES)]
                    values = rng.integers(0, 200, self.BATCH_SIZE).astype(float)
                    store.insert(name, values)
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        def reader(reader_index: int) -> None:
            rng = np.random.default_rng(2000 + reader_index)
            try:
                while not stop_reading.is_set():
                    name = ATTRIBUTES[rng.integers(0, len(ATTRIBUTES))]
                    response = store.query(name, [{"op": "total"}, FULL_DOMAIN])
                    total, full_range = response["results"]
                    # A torn read would mix two histogram states; within one
                    # locked batch the two must describe the same mass.
                    if abs(total - full_range) > 1e-6 * max(1.0, abs(total)):
                        torn.append((name, total, full_range))
                    low = float(rng.uniform(0, 150))
                    estimate = store.estimate_range(name, low, low + 25.0)
                    if not np.isfinite(estimate) or estimate < 0:
                        torn.append((name, "range", estimate))
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        writers = [
            threading.Thread(target=writer, args=(index,), name=f"writer-{index}")
            for index in range(self.N_WRITERS)
        ]
        readers = [
            threading.Thread(target=reader, args=(index,), name=f"reader-{index}", daemon=True)
            for index in range(self.N_READERS)
        ]
        for thread in readers:
            thread.start()
        _run_threads(writers)
        stop_reading.set()
        for thread in readers:
            thread.join(timeout=30)

        assert errors == []
        assert torn == []

        # Writes are conserved exactly: each writer contributed a known number
        # of batches to each attribute (round-robin over writer+batch index).
        expected = {name: 0 for name in ATTRIBUTES}
        for writer_index in range(self.N_WRITERS):
            for batch_index in range(self.BATCHES_PER_WRITER):
                name = ATTRIBUTES[(writer_index + batch_index) % len(ATTRIBUTES)]
                expected[name] += self.BATCH_SIZE
        for name in ATTRIBUTES:
            stats = store.stats(name)
            assert stats.inserted == expected[name]
            assert stats.total_count == pytest.approx(expected[name])

    def test_concurrent_ingest_through_pipeline(self, store):
        errors = []
        per_thread = 1500

        with IngestPipeline(store, max_batch=128) as pipeline:

            def producer(thread_index: int) -> None:
                rng = np.random.default_rng(3000 + thread_index)
                try:
                    name = ATTRIBUTES[thread_index % len(ATTRIBUTES)]
                    for value in rng.integers(0, 300, per_thread).astype(float):
                        pipeline.submit(name, [value])
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            _run_threads(
                [
                    threading.Thread(target=producer, args=(index,))
                    for index in range(6)
                ]
            )

        assert errors == []
        # 6 producers over 3 attributes -> 2 producers each.
        total = sum(store.total_count(name) for name in ATTRIBUTES)
        assert total == pytest.approx(6 * per_thread)
        for name in ATTRIBUTES:
            assert store.total_count(name) == pytest.approx(2 * per_thread)

    def test_concurrent_snapshot_restore_during_ingest(self, store):
        errors = []
        stop = threading.Event()

        def writer() -> None:
            rng = np.random.default_rng(7)
            try:
                for _ in range(40):
                    store.insert("age", rng.integers(0, 100, 50).astype(float))
            except Exception as error:  # pragma: no cover
                errors.append(error)
            finally:
                stop.set()

        def snapshotter() -> None:
            try:
                while not stop.is_set():
                    snapshot = store.snapshot("age")
                    # The snapshot itself must be internally consistent.
                    restored = HistogramStore()
                    restored.restore("age", snapshot)
                    response = restored.query("age", [{"op": "total"}, FULL_DOMAIN])
                    total, full_range = response["results"]
                    assert total == pytest.approx(full_range)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        _run_threads(
            [threading.Thread(target=writer), threading.Thread(target=snapshotter)]
        )
        assert errors == []
        assert store.total_count("age") == pytest.approx(40 * 50)


class TestLockFreeReadPath:
    """The published-snapshot read path under sustained writer pressure.

    Readers here never take the per-attribute lock (REP010): read-only query
    batches pin one published ``(generation, snapshot)`` pair, so every
    assertion below must hold while writers continuously republish.
    """

    N_WRITERS = 4
    N_READERS = 3
    BATCHES_PER_WRITER = 30
    BATCH_SIZE = 100
    FULL_SELECTIVITY = {"op": "selectivity", "low": -1e18, "high": 1e18}

    def test_pinned_batches_and_monotone_generations_under_writers(self, store):
        errors = []
        torn = []
        regressions = []
        stop_reading = threading.Event()

        def writer(writer_index: int) -> None:
            rng = np.random.default_rng(1000 + writer_index)
            try:
                for batch_index in range(self.BATCHES_PER_WRITER):
                    name = ATTRIBUTES[(writer_index + batch_index) % len(ATTRIBUTES)]
                    values = rng.integers(0, 200, self.BATCH_SIZE).astype(float)
                    store.insert(name, values)
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        def reader(reader_index: int) -> None:
            rng = np.random.default_rng(2000 + reader_index)
            last_generation = {name: -1 for name in ATTRIBUTES}
            try:
                while not stop_reading.is_set():
                    name = ATTRIBUTES[rng.integers(0, len(ATTRIBUTES))]
                    response = store.query(
                        name, [{"op": "total"}, FULL_DOMAIN, self.FULL_SELECTIVITY]
                    )
                    total, full_range, fraction = response["results"]
                    # All three answers must describe ONE pinned snapshot: a
                    # torn batch would mix the mass of two histogram states.
                    if abs(total - full_range) > 1e-6 * max(1.0, abs(total)):
                        torn.append((name, "total-vs-range", total, full_range))
                    if total > 0 and abs(fraction - 1.0) > 1e-9:
                        torn.append((name, "selectivity", fraction))
                    # Publications are ordered by the attribute lock, so the
                    # generation a single reader observes never regresses.
                    generation = response["generation"]
                    if generation < last_generation[name]:
                        regressions.append(
                            (name, last_generation[name], generation)
                        )
                    last_generation[name] = generation
                    # Single-op lock-free entry points stay finite and sane.
                    estimate = store.estimate_range(name, 0.0, 50.0)
                    if not np.isfinite(estimate) or estimate < 0:
                        torn.append((name, "range", estimate))
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        writers = [
            threading.Thread(target=writer, args=(index,), name=f"writer-{index}")
            for index in range(self.N_WRITERS)
        ]
        readers = [
            threading.Thread(
                target=reader, args=(index,), name=f"reader-{index}", daemon=True
            )
            for index in range(self.N_READERS)
        ]
        for thread in readers:
            thread.start()
        _run_threads(writers)
        stop_reading.set()
        for thread in readers:
            thread.join(timeout=30)

        assert errors == []
        assert torn == []
        assert regressions == []

        # Conservation: the lock-free read path must converge to exactly what
        # the writers ingested once they are done.
        expected = {name: 0 for name in ATTRIBUTES}
        for writer_index in range(self.N_WRITERS):
            for batch_index in range(self.BATCHES_PER_WRITER):
                name = ATTRIBUTES[(writer_index + batch_index) % len(ATTRIBUTES)]
                expected[name] += self.BATCH_SIZE
        for name in ATTRIBUTES:
            stats = store.stats(name)
            assert stats.inserted == expected[name]
            assert store.total_count(name) == pytest.approx(expected[name])
            # The published generation has caught up with the write side.
            assert store.generation(name) == stats.generation


class TestConcurrentHttp:
    def test_threaded_server_with_parallel_clients(self):
        store = HistogramStore()
        store.create("age", "dc", memory_kb=0.5)
        errors = []
        per_client = 10
        batch = 100

        with StatisticsServer(store) as server:
            host, port = server.address

            def http_writer(index: int) -> None:
                client = StatisticsClient(host, port)
                rng = np.random.default_rng(4000 + index)
                try:
                    for _ in range(per_client):
                        client.ingest(
                            "age", insert=rng.integers(0, 90, batch).astype(float).tolist()
                        )
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            def http_reader() -> None:
                client = StatisticsClient(host, port)
                try:
                    for _ in range(20):
                        response = client.query("age", [{"op": "total"}, FULL_DOMAIN])
                        total, full_range = response["results"]
                        assert total == pytest.approx(full_range)
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            threads = [
                threading.Thread(target=http_writer, args=(index,)) for index in range(4)
            ] + [threading.Thread(target=http_reader) for _ in range(2)]
            _run_threads(threads)

            assert errors == []
            client = StatisticsClient(host, port)
            assert client.total_count("age") == pytest.approx(4 * per_client * batch)
