"""Unit tests for the chi-square statistic and probability function (Eq. 1)."""

import math

import numpy as np
import pytest

from repro import chi_square_probability, chi_square_statistic
from repro.exceptions import ConfigurationError
from repro.metrics.chi_square import (
    chi_square_uniform_statistic,
    regularized_gamma_p,
    regularized_gamma_q,
)


class TestChiSquareStatistic:
    def test_perfectly_uniform_counts_give_zero(self):
        assert chi_square_statistic([5, 5, 5], [5, 5, 5]) == 0.0
        assert chi_square_uniform_statistic([7, 7, 7, 7]) == 0.0

    def test_known_value(self):
        # ((6-5)^2 + (4-5)^2) / 5 = 0.4
        assert chi_square_statistic([6, 4], [5, 5]) == pytest.approx(0.4)

    def test_uniform_statistic_matches_explicit_expected(self):
        counts = [10, 2, 6, 6]
        expected = [6, 6, 6, 6]
        assert chi_square_uniform_statistic(counts) == pytest.approx(
            chi_square_statistic(counts, expected)
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            chi_square_statistic([1, 2], [1, 2, 3])

    def test_zero_expected_categories_are_skipped(self):
        assert chi_square_statistic([3, 1], [0, 1]) == pytest.approx(0.0)

    def test_empty_counts(self):
        assert chi_square_uniform_statistic([]) == 0.0


class TestChiSquareProbability:
    def test_zero_statistic_has_probability_one(self):
        assert chi_square_probability(0.0, 5) == pytest.approx(1.0)

    def test_probability_decreases_with_statistic(self):
        probabilities = [chi_square_probability(x, 4) for x in (1.0, 4.0, 10.0, 30.0)]
        assert all(b < a for a, b in zip(probabilities, probabilities[1:], strict=False))

    def test_probability_bounded(self):
        for chi2 in (0.1, 1.0, 5.0, 50.0, 500.0):
            for dof in (1, 3, 10, 100):
                q = chi_square_probability(chi2, dof)
                assert 0.0 <= q <= 1.0

    def test_one_degree_of_freedom_matches_erfc(self):
        # For dof = 1, Q(chi2) = erfc(sqrt(chi2 / 2)).
        for chi2 in (0.5, 1.0, 2.0, 5.0, 10.0):
            expected = math.erfc(math.sqrt(chi2 / 2.0))
            assert chi_square_probability(chi2, 1) == pytest.approx(expected, rel=1e-9)

    def test_two_degrees_of_freedom_matches_exponential(self):
        # For dof = 2, Q(chi2) = exp(-chi2 / 2).
        for chi2 in (0.5, 1.0, 3.0, 8.0):
            assert chi_square_probability(chi2, 2) == pytest.approx(
                math.exp(-chi2 / 2.0), rel=1e-9
            )

    def test_invalid_arguments_raise(self):
        with pytest.raises(ConfigurationError):
            chi_square_probability(1.0, 0)
        with pytest.raises(ConfigurationError):
            chi_square_probability(-1.0, 3)


class TestRegularizedGamma:
    def test_p_and_q_sum_to_one(self):
        for a in (0.5, 1.0, 2.5, 10.0):
            for x in (0.1, 1.0, 5.0, 20.0):
                assert regularized_gamma_p(a, x) + regularized_gamma_q(a, x) == pytest.approx(
                    1.0, abs=1e-9
                )

    def test_boundaries(self):
        assert regularized_gamma_p(2.0, 0.0) == 0.0
        assert regularized_gamma_q(2.0, 0.0) == 1.0

    def test_monotonic_in_x(self):
        values = [regularized_gamma_p(3.0, x) for x in np.linspace(0.1, 20, 25)]
        assert all(b >= a for a, b in zip(values, values[1:], strict=False))

    def test_invalid_arguments_raise(self):
        with pytest.raises(ConfigurationError):
            regularized_gamma_p(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            regularized_gamma_q(1.0, -1.0)
