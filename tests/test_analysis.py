"""Tests for the repro-verify static analyzer (repro.analysis).

Each rule gets a minimal must-flag and a must-pass fixture snippet, analyzed
via :func:`repro.analysis.analyze_source` under a path that matches the
rule's scope filter.  A final test asserts the real tree runs clean -- the
acceptance bar the CI `analysis` job enforces.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import all_rules, analyze_source, get_rule, run_analysis
from repro.analysis.__main__ import main as cli_main

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def findings(source: str, rel_path: str, *rule_ids: str) -> list[str]:
    """Rule ids reported for a dedented snippet (restricted to rule_ids)."""
    violations = analyze_source(
        textwrap.dedent(source), rel_path, select=rule_ids or None
    )
    return [violation.rule_id for violation in violations]


class TestRegistry:
    def test_catalog_is_complete(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == [f"REP00{i}" for i in range(1, 10)] + ["REP010", "REP011"]

    def test_every_rule_documents_itself(self):
        for rule in all_rules():
            assert rule.title
            assert len(rule.description) > len(rule.title)

    def test_get_rule(self):
        assert get_rule("REP004").rule_id == "REP004"


class TestRep001LockOrder:
    PATH = "src/repro/service/store.py"

    def test_flags_registry_after_attribute_in_one_with(self):
        source = """
            def bad(self, attribute):
                with attribute.lock, self._registry_lock:
                    pass
        """
        assert findings(source, self.PATH, "REP001") == ["REP001"]

    def test_flags_registry_nested_under_attribute(self):
        source = """
            def bad(self, attribute):
                with attribute.lock:
                    with self._registry_lock:
                        pass
        """
        assert findings(source, self.PATH, "REP001") == ["REP001"]

    def test_passes_registry_then_attribute(self):
        source = """
            def good(self, attribute):
                with self._registry_lock, attribute.lock:
                    pass
        """
        assert findings(source, self.PATH, "REP001") == []

    def test_flags_unsorted_all_locks_loop(self):
        source = """
            def bad(self, stack):
                for name in self._attributes:
                    stack.enter_context(self._attributes[name].lock)
        """
        assert findings(source, self.PATH, "REP001") == ["REP001"]

    def test_passes_sorted_all_locks_loop(self):
        source = """
            def good(self, stack):
                for name in sorted(self._attributes):
                    stack.enter_context(self._attributes[name].lock)
        """
        assert findings(source, self.PATH, "REP001") == []

    def test_scope_excludes_core(self):
        source = """
            def bad(self, attribute):
                with attribute.lock, self._registry_lock:
                    pass
        """
        assert findings(source, "src/repro/core/base.py", "REP001") == []


class TestRep002LogBeforeApply:
    PATH = "src/repro/service/store.py"

    def test_flags_apply_before_log(self):
        source = """
            def bad(self, attribute, values):
                with attribute.lock:
                    attribute.histogram.insert_many(values)
                    self._log({"op": "insert"})
        """
        assert findings(source, self.PATH, "REP002") == ["REP002"]

    def test_flags_log_outside_lock(self):
        source = """
            def bad(self, attribute, values):
                self._log({"op": "insert"})
                with attribute.lock:
                    attribute.histogram.insert_many(values)
        """
        assert findings(source, self.PATH, "REP002") == ["REP002"]

    def test_passes_log_then_apply_inside_lock(self):
        source = """
            def good(self, attribute, values):
                with attribute.lock:
                    self._log({"op": "insert"})
                    attribute.histogram.insert_many(values)
        """
        assert findings(source, self.PATH, "REP002") == []

    def test_flags_registry_install_before_log(self):
        source = """
            def bad(self, name, attribute):
                with self._registry_lock:
                    self._attributes[name] = attribute
                    self._log({"op": "create"})
        """
        assert findings(source, self.PATH, "REP002") == ["REP002"]

    def test_scope_is_store_only(self):
        source = """
            def unrelated(self, attribute, values):
                attribute.histogram.insert_many(values)
                self._log({"op": "insert"})
        """
        assert findings(source, "src/repro/cluster/server.py", "REP002") == []


class TestRep003ViewInvalidation:
    PATH = "src/repro/core/dynamic_other.py"

    def test_flags_array_swap_without_invalidate(self):
        source = """
            def rebuild(self, array):
                self._array = array
        """
        assert findings(source, self.PATH, "REP003") == ["REP003"]

    def test_passes_with_invalidate(self):
        source = """
            def rebuild(self, array):
                self._array = array
                self._invalidate_view()
        """
        assert findings(source, self.PATH, "REP003") == []

    def test_receiver_must_match(self):
        source = """
            def restore(histogram, array, other):
                histogram._array = array
                other._invalidate_view()
        """
        assert findings(source, self.PATH, "REP003") == ["REP003"]

    def test_passes_same_receiver_local_variable(self):
        source = """
            def restore(histogram, array):
                histogram._array = array
                histogram._invalidate_view()
        """
        assert findings(source, self.PATH, "REP003") == []

    def test_template_hooks_exempt(self):
        source = """
            def _delete_many(self, values):
                self._array = rebuild(values)
        """
        assert findings(source, self.PATH, "REP003") == []

    def test_init_exempt(self):
        source = """
            def __init__(self):
                self._array = None
        """
        assert findings(source, self.PATH, "REP003") == []


class TestRep004NoBuiltinHash:
    PATH = "src/repro/cluster/router.py"

    def test_flags_builtin_hash(self):
        source = """
            def place(name, n):
                return hash(name) % n
        """
        assert findings(source, self.PATH, "REP004") == ["REP004"]

    def test_passes_stable_hash(self):
        source = """
            def place(name, n):
                return stable_hash(name) % n
        """
        assert findings(source, self.PATH, "REP004") == []

    def test_method_named_hash_ok(self):
        source = """
            def place(hasher, name, n):
                return hasher.hash(name) % n
        """
        assert findings(source, self.PATH, "REP004") == []

    def test_scope_is_cluster_only(self):
        source = """
            def anywhere(name):
                return hash(name)
        """
        assert findings(source, "src/repro/core/base.py", "REP004") == []


class TestRep005GenerationBeforeSnapshot:
    PATH = "src/repro/cluster/coordinator.py"

    def test_flags_snapshot_before_generation(self):
        source = """
            def bad(self, shards, name):
                snaps = [shard.snapshot(name) for shard in shards]
                key = self._generation_sum(name)
                return key, snaps
        """
        assert findings(source, self.PATH, "REP005") == ["REP005"]

    def test_passes_generation_before_snapshot(self):
        source = """
            def good(self, shards, name):
                key = self._generation_sum(name)
                snaps = [shard.snapshot(name) for shard in shards]
                return key, snaps
        """
        assert findings(source, self.PATH, "REP005") == []

    def test_snapshot_only_function_skipped(self):
        source = """
            def resync(self, shard, name):
                return shard.snapshot(name)
        """
        assert findings(source, self.PATH, "REP005") == []


class TestRep006ViewHeldAcrossMutation:
    PATH = "src/repro/core/consumer.py"

    def test_flags_view_used_after_mutation(self):
        source = """
            def bad(histogram, value):
                view = histogram.segment_view()
                histogram.insert(value)
                return view.total
        """
        assert findings(source, self.PATH, "REP006") == ["REP006"]

    def test_passes_refetched_view(self):
        source = """
            def good(histogram, value):
                view = histogram.segment_view()
                total_before = view.total
                histogram.insert(value)
                view = histogram.segment_view()
                return total_before, view.total
        """
        # The pre-mutation use is fine; the post-mutation use reads the
        # re-fetched assignment.  The first-assignment heuristic keys on
        # the earliest segment_view() binding, so re-binding the SAME name
        # after the mutation still trips the rule -- use a new name.
        source_new_name = """
            def good(histogram, value):
                view = histogram.segment_view()
                total_before = view.total
                histogram.insert(value)
                fresh = histogram.segment_view()
                return total_before, fresh.total
        """
        assert findings(source_new_name, self.PATH, "REP006") == []

    def test_passes_use_before_mutation(self):
        source = """
            def good(histogram, value):
                view = histogram.segment_view()
                total = view.total
                histogram.insert(value)
                return total
        """
        assert findings(source, self.PATH, "REP006") == []


class TestRep007NoPostRetry:
    PATH = "src/repro/service/client.py"

    def test_flags_unguarded_retry_after_send(self):
        source = """
            def bad(self, connection, method, path):
                for attempt in range(3):
                    try:
                        connection.request(method, path)
                        return connection.getresponse()
                    except OSError:
                        continue
        """
        assert findings(source, self.PATH, "REP007") == ["REP007"]

    def test_passes_get_guarded_retry(self):
        source = """
            def good(self, connection, method, path):
                for attempt in range(3):
                    try:
                        connection.request(method, path)
                        return connection.getresponse()
                    except OSError:
                        if method != "GET":
                            raise
                        continue
        """
        assert findings(source, self.PATH, "REP007") == []

    def test_passes_connect_phase_retry(self):
        source = """
            def good(self, connection):
                for attempt in range(3):
                    try:
                        connection.connect()
                    except OSError:
                        continue
        """
        assert findings(source, self.PATH, "REP007") == []

    def test_scope_is_clients_only(self):
        source = """
            def elsewhere(self, connection, method, path):
                for attempt in range(3):
                    try:
                        connection.request(method, path)
                    except OSError:
                        continue
        """
        assert findings(source, "src/repro/service/store.py", "REP007") == []


class TestRep008CompactionUnderLock:
    PATH = "src/repro/service/store.py"

    def test_flags_compact_trigger_under_lock(self):
        source = """
            def bad(self, attribute, values):
                with attribute.lock:
                    attribute.histogram.insert_many(values)
                    self._maybe_compact()
        """
        assert findings(source, self.PATH, "REP008") == ["REP008"]

    def test_passes_compact_after_lock_released(self):
        source = """
            def good(self, attribute, values):
                with attribute.lock:
                    attribute.histogram.insert_many(values)
                self._maybe_compact()
        """
        assert findings(source, self.PATH, "REP008") == []

    def test_flags_direct_compact_under_registry_lock(self):
        source = """
            def bad(self):
                with self._registry_lock:
                    self.compact()
        """
        assert findings(source, self.PATH, "REP008") == ["REP008"]


class TestRep009ObsLocksAreLeaves:
    PATH = "src/repro/obs/registry.py"

    def test_flags_blocking_call_under_obs_lock(self):
        source = """
            def observe(self, value):
                with self._lock:
                    self._count += 1
                    print(value)
        """
        assert findings(source, self.PATH, "REP009") == ["REP009"]

    def test_flags_nested_lock_under_obs_lock(self):
        source = """
            def render(self):
                with self._lock:
                    with metric._lock:
                        pass
        """
        assert findings(source, self.PATH, "REP009") == ["REP009"]

    def test_flags_store_lock_acquisition_in_obs_code(self):
        source = """
            def inc(self, buffer):
                with buffer.lock:
                    self._value += 1
        """
        assert findings(source, self.PATH, "REP009") == ["REP009"]

    def test_flags_slow_log_emission_under_lock(self):
        source = """
            def finish(self, entry):
                with self._lock:
                    logger.warning(entry)
        """
        assert findings(source, self.PATH, "REP009") == ["REP009"]

    def test_passes_update_then_emit_after_release(self):
        source = """
            def finish(self, entry):
                with self._lock:
                    self._count += 1
                logger.warning(entry)
        """
        assert findings(source, self.PATH, "REP009") == []

    def test_scope_is_obs_only(self):
        source = """
            def append(self, record):
                with self._lock:
                    os.fsync(self._file.fileno())
        """
        assert findings(source, "src/repro/service/wal.py", "REP009") == []


class TestRep010LockFreeReads:
    PATH = "src/repro/service/store.py"

    def test_flags_read_entry_point_taking_attribute_lock(self):
        source = """
            def total_count(self, name):
                attribute = self._attribute(name)
                with attribute.lock:
                    return attribute.histogram.total_count
        """
        assert findings(source, self.PATH, "REP010") == ["REP010"]

    def test_flags_query_batch_under_attribute_lock(self):
        source = """
            def query(self, name, queries):
                attribute = self._attribute(name)
                with attribute.lock:
                    return evaluate_queries(attribute.histogram, queries)
        """
        assert findings(source, self.PATH, "REP010") == ["REP010"]

    def test_flags_explicit_acquire_in_read_path(self):
        source = """
            def estimate_range(self, name, low, high):
                attribute = self._attribute(name)
                attribute.lock.acquire()
                try:
                    return attribute.histogram.estimate_range(low, high)
                finally:
                    attribute.lock.release()
        """
        assert findings(source, self.PATH, "REP010") == ["REP010"]

    def test_flags_field_mutation_of_published_snapshot(self):
        source = """
            def publish(self, attribute, generation):
                attribute.published.generation = generation
        """
        assert findings(source, self.PATH, "REP010") == ["REP010"]

    def test_flags_publication_split_across_attributes(self):
        source = """
            def publish(self, attribute, view, generation):
                attribute.published_view = view
                attribute.published_generation = generation
        """
        assert findings(source, self.PATH, "REP010") == ["REP010", "REP010"]

    def test_passes_read_from_published_reference(self):
        source = """
            def estimate_range(self, name, low, high):
                published = self._attribute(name).published
                return float(published.snapshot.estimate_range(low, high))
        """
        assert findings(source, self.PATH, "REP010") == []

    def test_passes_single_reference_publication(self):
        source = """
            def publish(self):
                self.published = _PublishedView(
                    generation=self.generation,
                    snapshot=SnapshotHistogram(self.histogram.published_view()),
                )
        """
        assert findings(source, self.PATH, "REP010") == []

    def test_passes_locked_fallback_helper(self):
        source = """
            def _query_locked(self, name, queries):
                attribute = self._attribute(name)
                with attribute.lock:
                    return evaluate_queries(attribute.histogram, queries)
        """
        assert findings(source, self.PATH, "REP010") == []

    def test_scope_is_store_only(self):
        source = """
            def total_count(self, name):
                attribute = self._attribute(name)
                with attribute.lock:
                    return attribute.histogram.total_count
        """
        assert findings(source, "src/repro/cluster/coordinator.py", "REP010") == []


class TestRep011NoBinaryPostWireRetry:
    PATH = "src/repro/cluster/transport.py"

    def test_flags_unguarded_retry_after_send(self):
        source = """
            def call(self, op, args):
                for attempt in range(3):
                    connection = self.checkout()
                    try:
                        connection.send(frame)
                        return connection.receive(self.timeout)
                    except OSError:
                        continue
        """
        assert findings(source, self.PATH, "REP011") == ["REP011"]

    def test_passes_idempotency_guarded_retry(self):
        source = """
            def call(self, op, args):
                idempotent = op in IDEMPOTENT_OPS
                for attempt in range(3):
                    connection = self.checkout()
                    try:
                        connection.send(frame)
                        return connection.receive(self.timeout)
                    except OSError:
                        if not idempotent:
                            raise
                        continue
        """
        assert findings(source, self.PATH, "REP011") == []

    def test_passes_connect_phase_retry(self):
        source = """
            def checkout_with_retry(self):
                for attempt in range(3):
                    try:
                        return self.checkout()
                    except OSError:
                        continue
        """
        assert findings(source, self.PATH, "REP011") == []

    def test_scope_is_transport_and_supervisor_only(self):
        source = """
            def call(self, op, args):
                for attempt in range(3):
                    try:
                        connection.send(frame)
                    except OSError:
                        continue
        """
        assert findings(source, self.PATH, "REP011") == ["REP011"]
        assert findings(source, "src/repro/cluster/supervisor.py", "REP011") == ["REP011"]
        assert findings(source, "src/repro/service/store.py", "REP011") == []


class TestSuppressions:
    PATH = "src/repro/cluster/router.py"

    def test_same_line_suppression_honoured(self):
        source = """
            def place(name, n):
                return hash(name) % n  # repro-verify: ignore[REP004] test-only deterministic input
        """
        assert findings(source, self.PATH) == []

    def test_preceding_line_suppression_honoured(self):
        source = """
            def place(name, n):
                # repro-verify: ignore[REP004] test-only deterministic input
                return hash(name) % n
        """
        assert findings(source, self.PATH) == []

    def test_wrong_rule_id_does_not_suppress(self):
        source = """
            def place(name, n):
                return hash(name) % n  # repro-verify: ignore[REP001] wrong rule
        """
        assert findings(source, self.PATH) == ["REP004"]

    def test_missing_justification_reported_as_rep000(self):
        source = """
            def place(name, n):
                return hash(name) % n  # repro-verify: ignore[REP004]
        """
        reported = findings(source, self.PATH)
        assert "REP000" in reported

    def test_unparsable_file_reported_not_raised(self):
        violations = run_analysis([])  # empty run is fine
        assert violations == []
        bad = analyze_source  # keep reference; real parse-failure path:
        assert bad is not None


class TestWholeRepoClean:
    def test_src_tree_has_no_violations(self):
        """The acceptance bar: `python -m repro.analysis src/` exits 0."""
        violations = run_analysis([REPO_SRC])
        rendered = "\n".join(v.render() for v in violations)
        assert not violations, f"repro-verify violations:\n{rendered}"

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert cli_main([str(clean)]) == 0
        dirty = tmp_path / "cluster"
        dirty.mkdir()
        bad = dirty / "repro_cluster_placement.py"
        bad.write_text("def place(n):\n    return hash(n)\n")
        # Path filter is substring-based; mimic the real layout.
        nested = tmp_path / "repro" / "cluster"
        nested.mkdir(parents=True)
        bad2 = nested / "placement.py"
        bad2.write_text("def place(n):\n    return hash(n)\n")
        assert cli_main([str(bad2)]) == 1
        out = capsys.readouterr().out
        assert "REP004" in out

    def test_cli_rejects_unknown_rule(self, tmp_path):
        assert cli_main(["--select", "REP999", str(tmp_path)]) == 2

    def test_cli_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REP001" in out and "REP008" in out
