"""Unit tests for the shared-nothing global histogram layer (Section 8)."""

import pytest

from repro import (
    DataDistribution,
    ExactHistogram,
    GlobalHistogramCoordinator,
    GlobalStrategy,
    SiteGenerationConfig,
    SSBMHistogram,
    generate_sites,
    ks_statistic,
    reduce_segments,
    superimpose,
)
from repro.exceptions import ConfigurationError


class TestSiteGeneration:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SiteGenerationConfig(n_sites=0)
        with pytest.raises(ConfigurationError):
            SiteGenerationConfig(min_range_fraction=0.0)
        with pytest.raises(ConfigurationError):
            SiteGenerationConfig(domain=(10, 5))

    def test_generates_requested_sites(self):
        config = SiteGenerationConfig(n_sites=4, total_points=2000, seed=1)
        sites = generate_sites(config)
        assert len(sites) == 4
        assert sum(site.size for site in sites) == pytest.approx(2000, abs=4)

    def test_site_data_stays_in_global_domain(self):
        config = SiteGenerationConfig(n_sites=3, total_points=1500, domain=(0, 500), seed=2)
        for site in generate_sites(config):
            assert site.data.min_value >= 0
            assert site.data.max_value <= 500

    def test_site_size_skew_concentrates_data(self):
        flat = generate_sites(SiteGenerationConfig(n_sites=6, total_points=6000, seed=3))
        skewed = generate_sites(
            SiteGenerationConfig(n_sites=6, total_points=6000, site_size_skew=2.0, seed=3)
        )
        assert max(s.size for s in skewed) > max(s.size for s in flat)

    def test_local_histogram_build(self):
        config = SiteGenerationConfig(n_sites=2, total_points=1000, seed=4)
        site = generate_sites(config)[0]
        histogram = site.build_local_histogram(0.25)
        assert histogram.total_count == pytest.approx(site.size)


class TestSuperposition:
    def test_superposition_of_exact_histograms_is_lossless(self):
        first = DataDistribution([1, 2, 2, 3])
        second = DataDistribution([2, 5, 6])
        union = superimpose([ExactHistogram.build(first), ExactHistogram.build(second)])
        pooled = DataDistribution([1, 2, 2, 3, 2, 5, 6])
        assert union.total_count == pytest.approx(7)
        assert ks_statistic(pooled, union) == pytest.approx(0.0, abs=1e-12)

    def test_superposition_preserves_total_count(self, small_distribution):
        histogram_a = SSBMHistogram.build(small_distribution, 10)
        histogram_b = SSBMHistogram.build(small_distribution, 15)
        union = superimpose([histogram_a, histogram_b])
        assert union.total_count == pytest.approx(2 * small_distribution.total_count)

    def test_union_has_borders_of_both_members(self, small_distribution):
        histogram_a = SSBMHistogram.build(small_distribution, 5)
        histogram_b = SSBMHistogram.build(small_distribution, 9)
        union = superimpose([histogram_a, histogram_b])
        assert union.bucket_count >= max(histogram_a.bucket_count, histogram_b.bucket_count)

    def test_empty_input_rejected(self):
        with pytest.raises(ConfigurationError):
            superimpose([])


class TestReduction:
    def test_reduction_hits_bucket_budget(self, small_distribution):
        union = superimpose(
            [SSBMHistogram.build(small_distribution, 20), SSBMHistogram.build(small_distribution, 20)]
        )
        reduced = reduce_segments(union, 12)
        assert reduced.bucket_count <= 12
        assert reduced.total_count == pytest.approx(union.total_count)

    def test_reduction_with_budget_larger_than_input(self, small_distribution):
        histogram = SSBMHistogram.build(small_distribution, 8)
        reduced = reduce_segments(histogram, 100)
        assert reduced.bucket_count == histogram.bucket_count

    def test_invalid_budget(self, small_distribution):
        histogram = SSBMHistogram.build(small_distribution, 8)
        with pytest.raises(ConfigurationError):
            reduce_segments(histogram, 0)


class TestDegenerateClusterInputs:
    """The degenerate shapes a live cluster feeds into the union operators.

    Regression tests for the explicit early returns: empty shards, all-empty
    unions, single-bucket unions, and a reduce budget at or above the current
    segment count must round-trip without touching the merge loop.
    """

    def test_superimpose_with_empty_members_ignores_them(self):
        from repro import DCHistogram

        empty = DCHistogram(n_buckets=8)  # never inserted into: zero buckets
        full = ExactHistogram.build(DataDistribution([1, 2, 2, 3]))
        union = superimpose([empty, full])
        assert union.total_count == pytest.approx(4.0)

    def test_superimpose_of_all_empty_members_is_an_empty_union(self):
        from repro import DCHistogram

        union = superimpose([DCHistogram(n_buckets=8), DCHistogram(n_buckets=8)])
        assert union.bucket_count == 0
        assert union.total_count == 0.0
        assert union.estimate_range(0.0, 100.0) == 0.0
        assert union.estimate_equal(5.0) == 0.0
        assert list(union.cdf_many([0.0, 1.0])) == [0.0, 0.0]

    def test_reduce_of_an_empty_union_is_empty(self):
        from repro import DCHistogram

        union = superimpose([DCHistogram(n_buckets=8)])
        reduced = reduce_segments(union, 5)
        assert reduced.bucket_count == 0
        assert reduced.total_count == 0.0

    def test_reduce_of_a_single_bucket_union_returns_it_unchanged(self):
        union = superimpose([ExactHistogram.build(DataDistribution([7, 7, 7]))])
        reduced = reduce_segments(union, 5)
        assert [(b.left, b.right, b.count) for b in reduced.buckets()] == [
            (b.left, b.right, b.count) for b in union.buckets()
        ]

    def test_reduce_with_budget_equal_to_segment_count_is_identity(self, small_distribution):
        histogram = SSBMHistogram.build(small_distribution, 8)
        reduced = reduce_segments(histogram, histogram.bucket_count)
        assert [(b.left, b.right, b.count) for b in reduced.buckets()] == [
            (b.left, b.right, b.count) for b in histogram.buckets()
        ]


class TestCoordinator:
    @pytest.fixture
    def sites(self):
        return generate_sites(SiteGenerationConfig(n_sites=4, total_points=4000, seed=5))

    def test_both_strategies_produce_histograms(self, sites):
        coordinator = GlobalHistogramCoordinator(sites, 0.25)
        for strategy in GlobalStrategy:
            histogram = coordinator.build(strategy)
            assert histogram.total_count == pytest.approx(
                sum(site.size for site in sites), rel=1e-6
            )

    def test_evaluation_returns_bounded_ks(self, sites):
        coordinator = GlobalHistogramCoordinator(sites, 0.25)
        results = coordinator.evaluate()
        assert set(results) == {"histogram_then_union", "union_then_histogram"}
        for value in results.values():
            assert 0.0 <= value <= 1.0

    def test_strategies_have_comparable_quality(self, sites):
        # Section 8: the two alternatives give histograms of approximately the
        # same quality.
        coordinator = GlobalHistogramCoordinator(sites, 0.25)
        results = coordinator.evaluate()
        difference = abs(
            results["histogram_then_union"] - results["union_then_histogram"]
        )
        assert difference < 0.1

    def test_pooled_data_matches_site_sizes(self, sites):
        coordinator = GlobalHistogramCoordinator(sites, 0.25)
        assert coordinator.pooled_data().total_count == sum(site.size for site in sites)

    def test_empty_site_list_rejected(self):
        with pytest.raises(ConfigurationError):
            GlobalHistogramCoordinator([], 0.25)

    def test_invalid_memory_rejected(self, sites):
        with pytest.raises(ConfigurationError):
            GlobalHistogramCoordinator(sites, 0.0)
