"""Replication correctness under injected faults.

The contracts under test (ISSUE 5 acceptance criteria):

* **failover reads**: with one of two replicas down, every read --
  query/estimate, snapshot, stats -- succeeds via the surviving replica;
* **exactly-once writes**: no scripted failure (fail-before-apply,
  fail-after-apply, fail-N-then-heal, hard down) ever double-applies a
  write; count conservation is asserted against the exact submitted totals;
* **resync**: after healing, replica snapshots are bit-identical (histogram
  state and lifetime counters; generations are replica-local by design).
"""

from __future__ import annotations

import pytest

from fault_injection import FlakyShard
from repro.cluster import ClusterClient, ClusterCoordinator, ClusterServer, LocalShard, ShardRouter
from repro.exceptions import ClusterError, ShardUnavailableError, UnknownAttributeError

N_SHARDS = 4


@pytest.fixture
def cluster():
    shards = [FlakyShard(LocalShard(f"shard-{index}")) for index in range(N_SHARDS)]
    router = ShardRouter([shard.shard_id for shard in shards], replication_factor=2)
    coordinator = ClusterCoordinator(shards, router=router, global_buckets=32)
    try:
        yield coordinator, {shard.shard_id: shard for shard in shards}
    finally:
        coordinator.close()


def replica_pair(coordinator, by_id, name):
    primary_id, follower_id = coordinator.router.replicas_for(name)
    return by_id[primary_id], by_id[follower_id]


def identical_snapshots(shard_a, shard_b, name) -> bool:
    """Bit-identical replica state: histogram + lifetime counters.

    Generations are replica-local (resync's restore bumps the target's), so
    they are excluded on purpose.
    """
    snap_a = shard_a.inner.snapshot(name)
    snap_b = shard_b.inner.snapshot(name)
    keys = ("histogram", "inserted", "deleted", "kind", "memory_kb")
    return all(snap_a[key] == snap_b[key] for key in keys)


def exact_total(shard, name) -> float:
    return shard.inner.store.total_count(name)


class TestFailoverReads:
    def test_reads_survive_a_dead_primary(self, cluster):
        coordinator, by_id = cluster
        coordinator.create("age", "dc", memory_kb=0.5)
        coordinator.ingest("age", insert=[float(v % 90) for v in range(1000)])
        primary, follower = replica_pair(coordinator, by_id, "age")

        primary.down = True
        result = coordinator.query("age", [{"op": "total"}])
        assert result["results"][0] == pytest.approx(1000.0)
        assert result["shard"] == follower.shard_id
        assert coordinator.estimate_range("age", 0, 89) == pytest.approx(1000.0, rel=0.05)
        assert coordinator.snapshot("age")["name"] == "age"
        assert coordinator.attribute_stats("age")["shard"] == follower.shard_id
        assert "age" in coordinator.names()

    def test_reads_survive_a_dead_follower(self, cluster):
        coordinator, by_id = cluster
        coordinator.create("age", "dc", memory_kb=0.5)
        coordinator.ingest("age", insert=[float(v % 90) for v in range(1000)])
        primary, follower = replica_pair(coordinator, by_id, "age")

        follower.down = True
        result = coordinator.query("age", [{"op": "total"}])
        assert result["results"][0] == pytest.approx(1000.0)
        assert result["shard"] == primary.shard_id

    def test_partitioned_reads_survive_a_dead_piece_primary(self, cluster):
        coordinator, by_id = cluster
        coordinator.create("hot", "dc", memory_kb=0.5, partition_boundaries=[500.0])
        coordinator.ingest("hot", insert=[float(v % 1000) for v in range(2000)])
        piece_replicas = coordinator.router.partition_replicas("hot")
        first_piece_primary = next(iter(piece_replicas))

        by_id[first_piece_primary].down = True
        assert coordinator.total_count("hot") == pytest.approx(2000.0)
        assert coordinator.estimate_range("hot", 0, 499) == pytest.approx(1000.0, rel=0.1)

    def test_all_replicas_down_raises(self, cluster):
        coordinator, by_id = cluster
        coordinator.create("age", "dc", memory_kb=0.5)
        for shard in replica_pair(coordinator, by_id, "age"):
            shard.down = True
        with pytest.raises(ShardUnavailableError):
            coordinator.query("age", [{"op": "total"}])
        with pytest.raises(ShardUnavailableError):
            coordinator.ingest("age", insert=[1.0])


class TestExactlyOnceWrites:
    def test_fail_before_apply_never_applies_and_resync_heals(self, cluster):
        coordinator, by_id = cluster
        coordinator.create("age", "dc", memory_kb=0.5)
        primary, follower = replica_pair(coordinator, by_id, "age")

        follower.fail_next_ingests(1, when="before")
        result = coordinator.ingest("age", insert=[float(v) for v in range(100)])
        assert result["failed_replicas"] == [follower.shard_id]
        assert exact_total(primary, "age") == pytest.approx(100.0)
        assert exact_total(follower, "age") == pytest.approx(0.0)  # never arrived
        assert coordinator.is_stale("age", follower.shard_id)

        report = coordinator.resync(follower.shard_id)
        assert report["resynced"]["age"] == primary.shard_id
        assert exact_total(follower, "age") == pytest.approx(100.0)  # not 200
        assert identical_snapshots(primary, follower, "age")
        assert not coordinator.is_stale("age", follower.shard_id)

    def test_fail_after_apply_is_not_double_applied(self, cluster):
        coordinator, by_id = cluster
        coordinator.create("age", "dc", memory_kb=0.5)
        primary, follower = replica_pair(coordinator, by_id, "age")

        follower.fail_next_ingests(1, when="after")
        result = coordinator.ingest("age", insert=[float(v) for v in range(100)])
        assert result["failed_replicas"] == [follower.shard_id]
        # The write DID land before the response was lost; the coordinator
        # must not retry it (that would make it 200).
        assert exact_total(follower, "age") == pytest.approx(100.0)
        assert coordinator.is_stale("age", follower.shard_id)

        coordinator.resync(follower.shard_id)
        assert exact_total(follower, "age") == pytest.approx(100.0)
        assert identical_snapshots(primary, follower, "age")

    def test_fail_n_then_heal_conserves_counts(self, cluster):
        coordinator, by_id = cluster
        coordinator.create("age", "dc", memory_kb=0.5)
        primary, follower = replica_pair(coordinator, by_id, "age")

        follower.fail_next_ingests(3, when="before")
        for batch in range(5):
            coordinator.ingest("age", insert=[float(batch * 20 + i) for i in range(20)])
        assert exact_total(primary, "age") == pytest.approx(100.0)
        assert exact_total(follower, "age") == pytest.approx(40.0)  # healed for 2 of 5

        coordinator.resync(follower.shard_id)
        assert exact_total(follower, "age") == pytest.approx(100.0)
        assert identical_snapshots(primary, follower, "age")

    def test_down_replica_then_resync_bit_identical(self, cluster):
        coordinator, by_id = cluster
        coordinator.create("age", "dc", memory_kb=0.5)
        primary, follower = replica_pair(coordinator, by_id, "age")

        follower.down = True
        for batch in range(4):
            result = coordinator.ingest(
                "age", insert=[float(batch * 25 + i) for i in range(25)]
            )
            assert result["failed_replicas"] == [follower.shard_id]
        assert exact_total(primary, "age") == pytest.approx(100.0)

        follower.down = False
        report = coordinator.resync(follower.shard_id)
        assert report["resynced"]["age"] == primary.shard_id
        assert exact_total(follower, "age") == pytest.approx(100.0)
        assert identical_snapshots(primary, follower, "age")
        assert coordinator.stats()["stale_replicas"] == []

    def test_batch_ingest_with_one_replica_down_conserves_counts(self, cluster):
        coordinator, by_id = cluster
        coordinator.create("age", "dc", memory_kb=0.5)
        coordinator.create("hot", "dc", memory_kb=0.5, partition_boundaries=[500.0])
        primary, follower = replica_pair(coordinator, by_id, "age")

        follower.down = True
        result = coordinator.ingest_batch(
            {
                "age": [float(v % 90) for v in range(300)],
                "hot": {"insert": [float(v % 1000) for v in range(400)]},
            }
        )
        assert result["inserted"] == 700
        assert coordinator.total_count("age") == pytest.approx(300.0)
        assert coordinator.total_count("hot") == pytest.approx(400.0)

        follower.down = False
        coordinator.resync(follower.shard_id)
        assert coordinator.stats()["stale_replicas"] == []
        # Every replica pair of every group is bit-identical again.
        for replicas in coordinator.router.replica_sets_for("age"):
            assert identical_snapshots(by_id[replicas[0]], by_id[replicas[1]], "age")
        for replicas in coordinator.router.replica_sets_for("hot"):
            assert identical_snapshots(by_id[replicas[0]], by_id[replicas[1]], "hot")

    def test_partitioned_write_fails_only_when_whole_piece_group_is_down(self, cluster):
        coordinator, by_id = cluster
        coordinator.create("hot", "dc", memory_kb=0.5, partition_boundaries=[500.0])
        piece_replicas = coordinator.router.partition_replicas("hot")
        piece_id, replicas = next(iter(piece_replicas.items()))
        for shard_id in replicas:
            by_id[shard_id].down = True
        values_for_piece = [100.0] if piece_id == list(piece_replicas)[0] else [900.0]
        with pytest.raises(ShardUnavailableError):
            coordinator.ingest("hot", insert=values_for_piece)


class TestPartialFailureMarking:
    def test_fully_failed_group_still_marks_other_groups_stale(self, cluster):
        """A lost write for one piece must not hide another piece's stale replica."""
        coordinator, by_id = cluster
        coordinator.create("hot", "dc", memory_kb=0.5, partition_boundaries=[500.0])
        piece_replicas = coordinator.router.partition_replicas("hot")
        (first_piece, first_ids), (second_piece, second_ids) = piece_replicas.items()
        # First piece: both replicas down (write lost -> must raise).
        for shard_id in first_ids:
            by_id[shard_id].down = True
        # Second piece: only the follower down (partial -> must be marked).
        by_id[second_ids[1]].down = True

        with pytest.raises(ShardUnavailableError):
            coordinator.ingest("hot", insert=[100.0, 900.0])  # one value per piece
        assert coordinator.is_stale("hot", second_ids[1])
        # The fully-failed group's replicas still agree; neither is stale.
        assert not coordinator.is_stale("hot", first_ids[0])
        assert not coordinator.is_stale("hot", first_ids[1])

    def test_create_with_down_replica_does_not_poison_later_writes(self, cluster):
        """A replica that missed the create must not fail every later write.

        The revived replica raises UnknownAttributeError on ingest; the
        coordinator treats that as a replica failure (mark stale), not an
        application error, and resync's restore re-creates the attribute.
        """
        coordinator, by_id = cluster
        primary_id, follower_id = coordinator.router.replicas_for("age")
        follower = by_id[follower_id]

        follower.down = True
        created = coordinator.create("age", "dc", memory_kb=0.5)
        assert created["failed_replicas"] == [follower_id]
        assert coordinator.is_stale("age", follower_id)

        # Revived but without the attribute: writes keep succeeding.
        follower.down = False
        result = coordinator.ingest("age", insert=[float(v) for v in range(100)])
        assert result["failed_replicas"] == [follower_id]
        assert coordinator.total_count("age") == pytest.approx(100.0)

        report = coordinator.resync(follower_id)
        assert report["resynced"]["age"] == primary_id
        assert exact_total(follower, "age") == pytest.approx(100.0)
        assert identical_snapshots(by_id[primary_id], follower, "age")
        # A truly unknown attribute still raises for the caller.
        with pytest.raises(UnknownAttributeError):
            coordinator.ingest("ghost", insert=[1.0])

    def test_read_failover_skips_stale_replica_missing_the_attribute(self, cluster):
        """Primary down + stale follower without the attribute: the client
        must see 'shard unavailable' (retry/heal), not 'unknown attribute'."""
        coordinator, by_id = cluster
        primary_id, follower_id = coordinator.router.replicas_for("age")
        by_id[follower_id].down = True
        coordinator.create("age", "dc", memory_kb=0.5)  # follower misses it
        by_id[follower_id].down = False
        by_id[primary_id].down = True
        with pytest.raises(ShardUnavailableError):
            coordinator.query("age", [{"op": "total"}])

    def test_restore_with_one_replica_down_marks_it_stale(self, cluster):
        coordinator, by_id = cluster
        coordinator.create("age", "dc", memory_kb=0.5)
        coordinator.ingest("age", insert=[float(v) for v in range(100)])
        snapshot = coordinator.snapshot("age")
        primary, follower = replica_pair(coordinator, by_id, "age")

        follower.down = True
        coordinator.restore("age", snapshot)  # must succeed on the primary
        assert coordinator.is_stale("age", follower.shard_id)

        follower.down = False
        coordinator.resync(follower.shard_id)
        assert identical_snapshots(primary, follower, "age")
        assert not coordinator.is_stale("age", follower.shard_id)


class TestDropUnderFailure:
    def test_drop_with_down_replica_succeeds_and_is_retryable(self, cluster):
        coordinator, by_id = cluster
        coordinator.create("age", "dc", memory_kb=0.5)
        coordinator.ingest("age", insert=[1.0, 2.0, 3.0])
        primary, follower = replica_pair(coordinator, by_id, "age")

        follower.down = True
        result = coordinator.drop("age")
        assert result["shards"] == [primary.shard_id]
        assert result["unreached"] == [follower.shard_id]
        assert "age" not in primary.inner.names()

        # The revived replica still holds a zombie copy; retrying the drop
        # clears it (the already-dropped primary counts as dropped).
        follower.down = False
        assert "age" in coordinator.names()
        retried = coordinator.drop("age")
        assert retried["shards"] == [follower.shard_id]
        assert "unreached" not in retried
        assert "age" not in coordinator.names()

    def test_partial_drop_keeps_partition_routing_until_complete(self, cluster):
        """An incomplete drop must not withdraw the partition: the retry
        routes by it to reach the revived zombie piece."""
        coordinator, by_id = cluster
        coordinator.create("hot", "dc", memory_kb=0.5, partition_boundaries=[500.0])
        coordinator.ingest("hot", insert=[float(v % 1000) for v in range(400)])
        piece_replicas = coordinator.router.partition_replicas("hot")
        zombie_id = next(iter(piece_replicas))  # a piece primary

        by_id[zombie_id].down = True
        result = coordinator.drop("hot")
        assert result["unreached"] == [zombie_id]
        assert coordinator.router.is_partitioned("hot")  # routing survives

        by_id[zombie_id].down = False
        retried = coordinator.drop("hot")
        assert retried["shards"] == [zombie_id]
        assert "unreached" not in retried
        assert not coordinator.router.is_partitioned("hot")
        assert "hot" not in coordinator.names()

    def test_drop_unknown_attribute_still_raises(self, cluster):
        coordinator, _ = cluster
        with pytest.raises(UnknownAttributeError):
            coordinator.drop("ghost")


class TestMergeCacheFailover:
    def test_stale_follower_snapshot_is_not_cached_under_primary_generation(self, cluster):
        """A merge built from a stale failover snapshot must not be pinned.

        The generation probe (stats) can be served by the fresh primary
        while the snapshot fetch fails over to a stale follower; caching
        that under-counting merge under the primary's generation would
        serve it until the next write.  Keyed on the snapshots actually
        used, the very next probe misses and rebuilds from the primary.
        """
        coordinator, by_id = cluster
        coordinator.create("hot", "dc", memory_kb=0.5, partition_boundaries=[500.0])
        coordinator.ingest("hot", insert=[float(v % 1000) for v in range(1000)])
        assert coordinator.total_count("hot") == pytest.approx(1000.0)

        piece_replicas = coordinator.router.partition_replicas("hot")
        piece_primary_id, piece_follower_id = next(iter(piece_replicas.values()))
        primary, follower = by_id[piece_primary_id], by_id[piece_follower_id]

        # Make the follower stale: it misses a 100-value write to this piece.
        follower.fail_next_ingests(1, when="before")
        low_piece_value = 100.0  # routes to the first piece (boundary 500)
        coordinator.ingest("hot", insert=[low_piece_value] * 100)
        assert coordinator.is_stale("hot", piece_follower_id)

        # Probe path (stats) healthy, snapshot path down on the primary:
        # the rebuild is forced onto the stale follower's snapshot.
        primary.snapshot_down = True
        assert coordinator.total_count("hot") == pytest.approx(1000.0)  # stale merge

        # Primary's snapshot path heals; no new writes happen.  The cached
        # stale merge must NOT satisfy the fresh-primary generation probe.
        primary.snapshot_down = False
        assert coordinator.total_count("hot") == pytest.approx(1100.0)


class TestOperationalGuards:
    def test_rebalance_and_drain_require_rf1(self, cluster):
        coordinator, _ = cluster
        coordinator.create("age", "dc", memory_kb=0.5)
        with pytest.raises(ClusterError, match="replication_factor"):
            coordinator.rebalance("age", "shard-0")
        with pytest.raises(ClusterError, match="replication_factor"):
            coordinator.drain("shard-0")

    def test_resync_reports_unrecoverable_rf1_attributes(self):
        shards = [FlakyShard(LocalShard(f"shard-{index}")) for index in range(2)]
        coordinator = ClusterCoordinator(shards, global_buckets=16)  # RF = 1
        try:
            coordinator.create("age", "dc", memory_kb=0.5)
            home = coordinator.router.shard_for("age")
            report = coordinator.resync(home)
            assert report["unrecoverable"] == ["age"]
            assert report["resynced"] == {}
        finally:
            coordinator.close()


class TestResyncOverHttp:
    def test_resync_route_and_client_verb(self, cluster):
        coordinator, by_id = cluster
        coordinator.create("age", "dc", memory_kb=0.5)
        primary, follower = replica_pair(coordinator, by_id, "age")
        follower.down = True
        coordinator.ingest("age", insert=[float(v) for v in range(50)])
        follower.down = False

        with ClusterServer(coordinator) as server:
            host, port = server.address
            client = ClusterClient(host, port)
            report = client.resync(follower.shard_id)
            assert report["resynced"]["age"] == primary.shard_id
            stats = client.cluster_stats()
            assert stats["placement"]["replication_factor"] == 2
            assert stats["stale_replicas"] == []
        assert exact_total(follower, "age") == pytest.approx(50.0)
