"""Unit tests for the statistics service's HistogramStore."""

import pytest

from repro import DuplicateAttributeError, HistogramStore, UnknownAttributeError
from repro.exceptions import ConfigurationError


@pytest.fixture
def store():
    return HistogramStore()


@pytest.fixture
def loaded_store(store, rng):
    store.create("age", "dc", memory_kb=0.5)
    store.create("price", "dado", memory_kb=0.5)
    store.insert("age", rng.integers(0, 100, 3000).astype(float))
    store.insert("price", rng.integers(0, 500, 3000).astype(float))
    return store


class TestRegistry:
    def test_create_and_contains(self, store):
        stats = store.create("age", "dc", memory_kb=0.5)
        assert stats.name == "age"
        assert stats.kind == "dc"
        assert stats.total_count == 0
        assert "age" in store
        assert len(store) == 1
        assert store.names() == ["age"]

    @pytest.mark.parametrize("kind", ["dc", "dvo", "dado", "ac"])
    def test_create_every_dynamic_kind(self, store, kind):
        stats = store.create(f"attr_{kind}", kind, memory_kb=0.5, disk_factor=2.0)
        assert stats.kind == kind

    def test_duplicate_create_rejected(self, store):
        store.create("age")
        with pytest.raises(DuplicateAttributeError):
            store.create("age")

    def test_duplicate_create_exist_ok(self, store):
        store.create("age", memory_kb=0.5)
        store.insert("age", [1.0, 2.0, 3.0])
        stats = store.create("age", memory_kb=0.5, exist_ok=True)
        assert stats.total_count == 3  # existing attribute untouched

    def test_unknown_kind_rejected(self, store):
        with pytest.raises(ConfigurationError):
            store.create("age", "mystery")

    def test_empty_name_rejected(self, store):
        with pytest.raises(ConfigurationError):
            store.create("")

    def test_drop(self, store):
        store.create("age")
        store.drop("age")
        assert "age" not in store
        with pytest.raises(UnknownAttributeError):
            store.drop("age")

    def test_unknown_attribute_raises(self, store):
        with pytest.raises(UnknownAttributeError):
            store.insert("missing", [1.0])
        with pytest.raises(UnknownAttributeError):
            store.estimate_range("missing", 0, 1)
        with pytest.raises(UnknownAttributeError):
            store.stats("missing")


class TestReadsAndWrites:
    def test_insert_returns_batch_size_and_counts(self, store):
        store.create("age", "dc", memory_kb=0.5)
        assert store.insert("age", [1.0, 2.0, 3.0]) == 3
        assert store.insert("age", []) == 0
        assert store.total_count("age") == pytest.approx(3.0)
        stats = store.stats("age")
        assert stats.inserted == 3
        assert stats.generation == 1

    def test_delete_batch(self, loaded_store):
        before = loaded_store.total_count("age")
        deleted = loaded_store.delete("age", [10.0, 20.0])
        assert deleted == 2
        assert loaded_store.total_count("age") == pytest.approx(before - 2)
        assert loaded_store.stats("age").deleted == 2

    def test_large_delete_batch_takes_vectorised_path(self, loaded_store, rng):
        # Batches above the vectorisation threshold go through one binning
        # pass; totals, per-attribute counters and a single generation bump
        # must match the per-value contract exactly.
        before = loaded_store.total_count("age")
        generation = loaded_store.stats("age").generation
        batch = rng.integers(0, 100, 500).astype(float).tolist()
        assert loaded_store.delete("age", batch) == 500
        assert loaded_store.total_count("age") == pytest.approx(before - 500)
        assert loaded_store.stats("age").deleted == 500
        assert loaded_store.stats("age").generation == generation + 1

    def test_partial_delete_batch_reports_applied_count(self, store):
        from repro.exceptions import DeletionError

        store.create("age", "dc", memory_kb=0.5)
        store.insert("age", [10.0] * 5)
        with pytest.raises(DeletionError) as excinfo:
            store.delete("age", [10.0, 7777.0, 10.0])
        # 10.0 applied, 7777.0 poisoned (loading buffer miss): one applied.
        assert excinfo.value.applied_count == 1
        assert store.stats("age").deleted == 1
        assert store.total_count("age") == pytest.approx(4.0)

    def test_estimates_match_underlying_histogram(self, loaded_store):
        attribute = loaded_store._attribute("age")
        histogram = attribute.histogram
        assert loaded_store.estimate_range("age", 10, 40) == pytest.approx(
            histogram.estimate_range(10, 40)
        )
        assert loaded_store.estimate_equal("age", 50.0) == pytest.approx(
            histogram.estimate_equal(50.0)
        )
        xs = [0.0, 25.0, 99.0]
        assert loaded_store.cdf("age", xs) == pytest.approx(list(histogram.cdf_many(xs)))

    def test_attributes_are_independent(self, loaded_store):
        assert loaded_store.total_count("age") == pytest.approx(3000)
        assert loaded_store.total_count("price") == pytest.approx(3000)
        loaded_store.insert("age", [5.0])
        assert loaded_store.total_count("price") == pytest.approx(3000)

    def test_batched_insert_equivalent_to_per_value_totals(self, store, rng):
        values = rng.integers(0, 80, 2000).astype(float)
        store.create("batched", "dc", memory_kb=0.5)
        store.create("looped", "dc", memory_kb=0.5)
        store.insert("batched", values)
        for value in values:
            store.insert("looped", [value], repartition_interval=1)
        assert store.total_count("batched") == pytest.approx(store.total_count("looped"))
        # The batched maintenance may delay repartitions slightly, but the
        # served distribution must stay close to the per-value one.
        for low, high in [(0, 20), (10, 60), (40, 79)]:
            a = store.estimate_range("batched", low, high)
            b = store.estimate_range("looped", low, high)
            assert a == pytest.approx(b, rel=0.15, abs=30.0)


class TestQueryBatches:
    def test_query_runs_all_ops(self, loaded_store):
        response = loaded_store.query(
            "age",
            [
                {"op": "total"},
                {"op": "range", "low": 0, "high": 99},
                {"op": "equal", "value": 42.0},
                {"op": "cdf", "xs": [0.0, 50.0, 99.0]},
                {"op": "selectivity", "low": 0, "high": 99},
            ],
        )
        total, full_range, equal, cdf, selectivity = response["results"]
        assert total == pytest.approx(3000)
        assert full_range == pytest.approx(total)
        assert equal > 0
        assert cdf[-1] == pytest.approx(1.0)
        assert selectivity == pytest.approx(1.0)
        assert response["generation"] == loaded_store.stats("age").generation

    def test_query_unknown_op_rejected(self, loaded_store):
        with pytest.raises(ConfigurationError):
            loaded_store.query("age", [{"op": "mystery"}])


class TestStats:
    def test_stats_all_sorted(self, loaded_store):
        stats = loaded_store.stats_all()
        assert [s.name for s in stats] == ["age", "price"]
        assert all(s.total_count == pytest.approx(3000) for s in stats)

    def test_stats_to_dict_round_trips_json(self, loaded_store):
        import json

        payload = json.loads(json.dumps(loaded_store.stats("age").to_dict()))
        assert payload["name"] == "age"
        assert payload["kind"] == "dc"
        assert payload["total_count"] == pytest.approx(3000)


class TestSnapshotRestore:
    def test_snapshot_restore_round_trip(self, loaded_store):
        snapshot = loaded_store.snapshot("age")
        before_range = loaded_store.estimate_range("age", 10, 60)
        loaded_store.insert("age", [1.0] * 500)
        loaded_store.restore("age", snapshot)
        assert loaded_store.total_count("age") == pytest.approx(3000)
        assert loaded_store.estimate_range("age", 10, 60) == pytest.approx(before_range)

    def test_restore_bumps_generation(self, loaded_store):
        generation = loaded_store.stats("age").generation
        loaded_store.restore("age", loaded_store.snapshot("age"))
        assert loaded_store.stats("age").generation > generation

    def test_restore_creates_missing_attribute(self, loaded_store):
        snapshot = loaded_store.snapshot("age")
        loaded_store.drop("age")
        stats = loaded_store.restore("age", snapshot)
        assert stats.total_count == pytest.approx(3000)
        assert "age" in loaded_store

    def test_restore_continues_accepting_updates(self, loaded_store):
        snapshot = loaded_store.snapshot("price")
        loaded_store.restore("price", snapshot)
        loaded_store.insert("price", [100.0, 200.0])
        assert loaded_store.total_count("price") == pytest.approx(3002)

    def test_snapshot_all_restore_all(self, loaded_store):
        payload = loaded_store.snapshot_all()
        fresh = HistogramStore()
        restored = fresh.restore_all(payload)
        assert sorted(s.name for s in restored) == ["age", "price"]
        assert fresh.total_count("age") == pytest.approx(3000)
        assert fresh.estimate_range("price", 0, 250) == pytest.approx(
            loaded_store.estimate_range("price", 0, 250)
        )

    def test_snapshot_is_json_compatible(self, loaded_store):
        import json

        payload = json.loads(json.dumps(loaded_store.snapshot_all()))
        fresh = HistogramStore()
        fresh.restore_all(payload)
        assert fresh.total_count("age") == pytest.approx(3000)


class TestFailureAtomicity:
    def test_partial_delete_failure_still_bumps_generation(self, store):
        from repro.exceptions import DeletionError

        store.create("age", "dc", memory_kb=0.5)
        store.insert("age", [5.0])
        generation = store.stats("age").generation
        with pytest.raises(DeletionError):
            store.delete("age", [5.0, 5.0])  # second delete underflows
        # The first delete was applied, so readers must see a new generation.
        assert store.stats("age").generation > generation
        assert store.total_count("age") == pytest.approx(0.0)


class TestValueValidation:
    def test_non_finite_values_rejected_before_mutation(self, store):
        store.create("age", "dc", memory_kb=0.5)
        store.insert("age", [1.0, 2.0])
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ConfigurationError):
                store.insert("age", [3.0, bad])
            with pytest.raises(ConfigurationError):
                store.delete("age", [bad])
        # Nothing from the rejected batches was applied.
        assert store.total_count("age") == pytest.approx(2.0)
        assert store.stats("age").inserted == 2

    def test_explicit_zero_repartition_interval_rejected(self, store):
        store.create("age", "dc", memory_kb=0.5)
        with pytest.raises(ConfigurationError):
            store.insert("age", [1.0], repartition_interval=0)
