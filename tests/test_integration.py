"""Integration tests: end-to-end scenarios spanning several subsystems.

These tests assert the paper's qualitative findings at a small scale: the
relative ordering of algorithms, the stability of dynamic histograms under
evolving data, and the equivalence of the distributed strategies.  They are
deliberately generous in their thresholds -- the absolute numbers depend on the
(scaled-down) data volume, the orderings should not.
"""

import numpy as np
import pytest

from repro import (
    ApproximateCompressedHistogram,
    CompressedHistogram,
    DADOHistogram,
    DataDistribution,
    DCHistogram,
    DVOHistogram,
    EquiWidthHistogram,
    GlobalHistogramCoordinator,
    MemoryModel,
    SADOHistogram,
    SelectivityEstimator,
    SiteGenerationConfig,
    SSBMHistogram,
    VOptimalHistogram,
    Between,
    generate_cluster_values,
    generate_sites,
    ks_statistic,
    reference_config,
    random_insertions,
    sorted_insertions,
    insertions_then_random_deletions,
)
from repro.experiments import replay

MEMORY = MemoryModel()
MEMORY_KB = 1.0


def _run_stream(histogram, stream):
    truth = DataDistribution()
    replay(histogram, stream, truth=truth)
    return ks_statistic(truth, histogram, value_unit=1.0), truth


@pytest.fixture(scope="module")
def reference_values():
    return generate_cluster_values(reference_config(scale=0.06, seed=11))


@pytest.fixture(scope="module")
def reference_stream(reference_values):
    return random_insertions(reference_values, seed=11)


class TestDynamicOrdering:
    """The headline result: DADO is the most effective dynamic histogram."""

    def test_dado_beats_ac_and_dvo(self, reference_values, reference_stream):
        dado_ks, _ = _run_stream(
            DADOHistogram(MEMORY.buckets_for_kb("dado", MEMORY_KB)), reference_stream
        )
        dvo_ks, _ = _run_stream(
            DVOHistogram(MEMORY.buckets_for_kb("dvo", MEMORY_KB)), reference_stream
        )
        ac = ApproximateCompressedHistogram(
            MEMORY.buckets_for_kb("ac", MEMORY_KB), 384, seed=11
        )
        ac_ks, _ = _run_stream(ac, reference_stream)
        assert dado_ks < ac_ks
        assert dado_ks <= dvo_ks + 0.005

    def test_all_dynamic_histograms_are_reasonably_accurate(self, reference_stream):
        for kind, histogram in (
            ("dc", DCHistogram(MEMORY.buckets_for_kb("dc", MEMORY_KB))),
            ("dado", DADOHistogram(MEMORY.buckets_for_kb("dado", MEMORY_KB))),
        ):
            ks, _ = _run_stream(histogram, reference_stream)
            assert ks < 0.06, f"{kind} is far less accurate than expected"

    def test_dado_close_to_static_compressed(self, reference_values, reference_stream):
        dado_ks, truth = _run_stream(
            DADOHistogram(MEMORY.buckets_for_kb("dado", MEMORY_KB)), reference_stream
        )
        static = CompressedHistogram.build(truth, MEMORY.buckets_for_kb("sc", MEMORY_KB))
        static_ks = ks_statistic(truth, static, value_unit=1.0)
        # Section 7.1: the dynamic DADO histogram comes close to its static
        # counterparts; allow a generous factor at this reduced scale.
        assert dado_ks <= 4 * static_ks + 0.01


class TestStaticOrdering:
    def test_vopt_family_beats_equi_width(self, reference_values):
        truth = DataDistribution(reference_values)
        budget = MEMORY.buckets_for_kb("sc", 0.25)
        equi_width_ks = ks_statistic(
            truth, EquiWidthHistogram.build(truth, budget), value_unit=1.0
        )
        for cls in (SSBMHistogram, CompressedHistogram):
            assert ks_statistic(truth, cls.build(truth, budget), value_unit=1.0) <= equi_width_ks

    def test_ssbm_matches_svo_quality_but_is_cheaper(self):
        config = reference_config(n_clusters=200, scale=0.03, seed=5)
        truth = DataDistribution(generate_cluster_values(config))
        budget = 20
        import time

        start = time.perf_counter()
        svo = VOptimalHistogram.build(truth, budget)
        svo_time = time.perf_counter() - start
        start = time.perf_counter()
        ssbm = SSBMHistogram.build(truth, budget)
        ssbm_time = time.perf_counter() - start

        svo_ks = ks_statistic(truth, svo, value_unit=1.0)
        ssbm_ks = ks_statistic(truth, ssbm, value_unit=1.0)
        assert ssbm_ks <= 3 * svo_ks + 0.01
        assert ssbm_time < svo_time

    def test_static_sado_and_svo_agree(self, reference_values):
        truth = DataDistribution(np.asarray(reference_values)[:3000])
        sado = ks_statistic(truth, SADOHistogram.build(truth, 20), value_unit=1.0)
        svo = ks_statistic(truth, VOptimalHistogram.build(truth, 20), value_unit=1.0)
        assert abs(sado - svo) < 0.03


class TestEvolvingData:
    def test_sorted_insertions_are_harder_but_survivable(self, reference_values):
        random_ks, _ = _run_stream(
            DADOHistogram(MEMORY.buckets_for_kb("dado", MEMORY_KB)),
            random_insertions(reference_values, seed=1),
        )
        sorted_ks, _ = _run_stream(
            DADOHistogram(MEMORY.buckets_for_kb("dado", MEMORY_KB)),
            sorted_insertions(reference_values),
        )
        assert sorted_ks < 0.2
        assert random_ks <= sorted_ks + 0.02

    def test_error_stabilises_as_data_grows(self, reference_values):
        histogram = DADOHistogram(MEMORY.buckets_for_kb("dado", MEMORY_KB))
        truth = DataDistribution()
        errors = []
        ordered = np.sort(reference_values)
        checkpoints = {len(ordered) // 4, len(ordered) // 2, len(ordered) - 1}
        for index, value in enumerate(ordered):
            histogram.insert(float(value))
            truth.add(float(value))
            if index in checkpoints:
                errors.append(ks_statistic(truth, histogram, value_unit=1.0))
        # The error at the end must not explode relative to the midway point.
        assert errors[-1] <= 2.5 * max(errors[0], 0.01)

    def test_deletions_do_not_break_accuracy(self, reference_values):
        stream = insertions_then_random_deletions(
            reference_values, delete_fraction=0.4, seed=3
        )
        histogram = DADOHistogram(MEMORY.buckets_for_kb("dado", MEMORY_KB))
        ks, truth = _run_stream(histogram, stream)
        assert truth.total_count == len(reference_values) - stream.delete_count
        assert ks < 0.1


class TestDistributedEquivalence:
    def test_histogram_union_matches_union_histogram(self):
        sites = generate_sites(
            SiteGenerationConfig(n_sites=5, total_points=5000, intrasite_skew=1.0, seed=9)
        )
        coordinator = GlobalHistogramCoordinator(sites, 250.0 / 1024.0)
        results = coordinator.evaluate()
        assert abs(
            results["histogram_then_union"] - results["union_then_histogram"]
        ) < 0.08


class TestSelectivityWorkflow:
    def test_optimizer_style_usage(self, reference_values, reference_stream):
        histogram = DADOHistogram(MEMORY.buckets_for_kb("dado", MEMORY_KB))
        truth = DataDistribution()
        replay(histogram, reference_stream, truth=truth)
        estimator = SelectivityEstimator(histogram)
        low, high = 1000.0, 2500.0
        report = estimator.report(Between(low, high), truth=truth)
        # The KS statistic bounds the selectivity error of any range predicate.
        ks = ks_statistic(truth, histogram, value_unit=1.0)
        assert abs(report.estimated_selectivity - report.true_selectivity) <= 2 * ks + 0.01
