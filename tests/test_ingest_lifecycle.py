"""Lifecycle/error-path tests for the ingest pipeline.

Regression coverage for two shutdown-path bugs (this module runs under the
dynamic lock-order monitor, see ``conftest.LOCKCHECK_MODULES``):

* ``close()`` raced a concurrent ``close()``: the second caller could hit
  ``self._flusher.join()`` after the first set ``self._flusher = None``
  (``AttributeError`` out of a shutdown path), and nothing made the method
  idempotent.
* A ``KeyboardInterrupt`` (or any non-``Exception``) raised mid-flush escaped
  *after* the buffer's runs had been detached, silently losing every value
  that was never attempted -- only ``Exception`` took the requeue path.
"""

import threading
import time

import pytest

from repro import HistogramStore, IngestPipeline


@pytest.fixture
def store():
    s = HistogramStore()
    s.create("age", "dc", memory_kb=0.5)
    return s


class InterruptingStore:
    """Store proxy whose first ``insert`` raises like a mid-apply Ctrl-C."""

    def __init__(self, store, interrupts: int = 1) -> None:
        self._store = store
        self.interrupts = interrupts
        self.insert_calls = 0

    def insert(self, name, values, repartition_interval=None):
        self.insert_calls += 1
        if self.interrupts > 0:
            self.interrupts -= 1
            raise KeyboardInterrupt
        return self._store.insert(
            name, values, repartition_interval=repartition_interval
        )

    def delete(self, name, values):
        return self._store.delete(name, values)


class TestCloseIdempotent:
    def test_close_twice_is_a_no_op(self, store):
        pipeline = IngestPipeline(store, auto_flush_interval=0.01).start()
        pipeline.submit("age", [1.0, 2.0])
        pipeline.close()
        pipeline.close()
        assert store.total_count("age") == pytest.approx(2.0)

    def test_close_without_start_drains(self, store):
        pipeline = IngestPipeline(store)
        pipeline.submit("age", [1.0])
        pipeline.close()
        assert store.total_count("age") == pytest.approx(1.0)

    def test_concurrent_close_never_raises(self, store):
        """Many threads racing ``close()`` (signal handler vs. atexit hook):
        exactly one joins the flusher, nobody observes a half-torn-down
        pipeline.  Pre-fix this intermittently raised ``AttributeError``
        from ``None.join()``.
        """
        for _ in range(20):
            pipeline = IngestPipeline(store, auto_flush_interval=0.005).start()
            pipeline.submit("age", [1.0])
            barrier = threading.Barrier(8)
            errors = []

            def racing_close():
                barrier.wait()
                try:
                    pipeline.close()
                except BaseException as error:  # noqa: BLE001 - the assertion
                    errors.append(error)

            threads = [
                threading.Thread(target=racing_close, name=f"closer-{i}")
                for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert errors == []
            assert pipeline.pending_count() == 0

    def test_pipeline_restartable_after_close(self, store):
        pipeline = IngestPipeline(store, auto_flush_interval=0.01)
        pipeline.start()
        pipeline.close()
        pipeline.start()
        pipeline.submit("age", [5.0])
        deadline = time.time() + 10.0
        while store.total_count("age") < 1.0 and time.time() < deadline:
            time.sleep(0.01)
        assert store.total_count("age") == pytest.approx(1.0)
        pipeline.close()


class TestInterruptMidFlush:
    def test_interrupt_requeues_untouched_tail(self, store):
        """A Ctrl-C in the middle of a flush drops only the interrupted run
        (progress unknown -- the bounded-undercount policy) and requeues the
        runs that were never attempted.  Pre-fix the whole detached tail was
        silently lost.
        """
        store.insert("age", [1.0])  # so the surviving delete run has a target
        inner = InterruptingStore(store)
        pipeline = IngestPipeline(inner, max_batch=1_000_000)
        # Alternating ops create three distinct runs in one buffer.
        pipeline.submit("age", [1.5, 2.5])        # run 0: interrupted, dropped
        pipeline.submit_delete("age", [1.0])      # run 1: must survive
        pipeline.submit("age", [7.0, 8.0, 9.0])   # run 2: must survive
        with pytest.raises(KeyboardInterrupt):
            pipeline.flush("age")
        assert pipeline.pending_count("age") == 4  # runs 1 + 2 requeued
        # The drain finishes on the next call -- applied exactly once.
        pipeline.flush("age")
        assert pipeline.pending_count("age") == 0
        assert inner.insert_calls == 2  # interrupted once, replayed run 2 once
        # 1 pre-seeded - 1 deleted + 3 from run 2 (run 0's two values dropped)
        assert store.total_count("age") == pytest.approx(3.0)
        stats = pipeline.stats
        assert stats["dropped_values"] == 2
        assert stats["requeued_values"] == 4

    def test_close_after_interrupted_flush_finishes_drain(self, store):
        store.insert("age", [1.0])
        inner = InterruptingStore(store)
        pipeline = IngestPipeline(inner, max_batch=1_000_000)
        pipeline.submit("age", [2.0])          # interrupted, dropped
        pipeline.submit_delete("age", [1.0])   # drained by the second close
        with pytest.raises(KeyboardInterrupt):
            pipeline.close()
        pipeline.close()
        assert pipeline.pending_count("age") == 0
        assert store.total_count("age") == pytest.approx(0.0)
