"""End-to-end tests for the cluster HTTP server and the cluster-aware client."""

import pytest

from repro import ServiceError, UnknownAttributeError
from repro.cluster import ClusterClient, ClusterCoordinator, ClusterServer, LocalShard


@pytest.fixture
def cluster():
    coordinator = ClusterCoordinator(
        [LocalShard(f"shard-{i}") for i in range(3)], global_buckets=32
    )
    with ClusterServer(coordinator) as server:
        yield server


@pytest.fixture
def client(cluster):
    host, port = cluster.address
    return ClusterClient(host, port)


class TestClusterRoutes:
    def test_health_reports_shards(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["shards"] == 3
        assert health["attributes"] == 0

    def test_create_ingest_estimate_round_trip(self, client):
        created = client.create("age", "dc", memory_kb=0.5)
        assert created["partitioned"] is False
        client.ingest("age", insert=[float(v % 90) for v in range(2000)])
        assert client.total_count("age") == pytest.approx(2000.0)
        assert client.estimate_range("age", 0, 89) == pytest.approx(2000.0, rel=0.02)

    def test_partitioned_round_trip_with_merged_estimates(self, client):
        created = client.create(
            "hot", "dc", memory_kb=0.5, partition_boundaries=[100.0, 200.0]
        )
        assert created["partitioned"] is True
        assert created["partition"]["boundaries"] == [100.0, 200.0]
        response = client.ingest("hot", insert=[50.0] * 40 + [150.0] * 40 + [250.0] * 40)
        assert response["inserted"] == 120
        assert len(response["per_shard"]) == 3
        batch = client.query("hot", [{"op": "total"}, {"op": "range", "low": 120, "high": 180}])
        assert batch["merged"] is True
        assert batch["results"][0] == pytest.approx(120.0)
        assert batch["results"][1] == pytest.approx(40.0, abs=10.0)

    def test_attribute_stats_routes(self, client):
        client.create("age", "dc")
        client.create("hot", "dc", partition_boundaries=[10.0])
        plain = client.stats("age")
        assert plain["partitioned"] is False and plain["stats"]["name"] == "age"
        partitioned = client.stats("hot")
        assert partitioned["partitioned"] is True
        assert len(partitioned["pieces"]) == 2

    def test_ingest_batch_route_with_deletes(self, client):
        client.create("age", "dc", memory_kb=0.5)
        client.create("hot", "dc", memory_kb=0.5, partition_boundaries=[100.0])
        report = client.ingest_batch({"age": [10.0] * 5, "hot": [50.0, 150.0]})
        assert report["inserted"] == 7
        report = client.ingest_batch(
            {"age": {"insert": [11.0], "delete": [10.0, 10.0]}, "hot": {"delete": [50.0]}}
        )
        assert report["inserted"] == 1
        assert report["deleted"] == 3
        assert client.total_count("age") == pytest.approx(4.0)
        assert client.total_count("hot") == pytest.approx(1.0)

    def test_ingest_batch_route_rejects_malformed_items(self, client):
        with pytest.raises(ServiceError):
            client.ingest_batch({"age": "not-a-list"})

    def test_cluster_stats_route(self, client):
        client.create("hot", "dc", partition_boundaries=[10.0])
        client.ingest("hot", insert=[5.0, 15.0])
        client.total_count("hot")
        stats = client.cluster_stats()
        assert len(stats["shards"]) == 3
        assert "hot" in stats["placement"]["partitions"]
        assert stats["merge_cache"]["hot"]["generation_sum"] >= 1

    def test_rebalance_route(self, client, cluster):
        client.create("age", "dc", memory_kb=0.5)
        client.ingest("age", insert=[1.0, 2.0, 3.0])
        coordinator = cluster.coordinator
        source = coordinator.router.shard_for("age")
        target = next(s for s in coordinator.shard_ids if s != source)
        report = client.rebalance("age", target)
        assert report["moved"] is True and report["to"] == target
        assert client.total_count("age") == pytest.approx(3.0)

    def test_drain_route(self, client, cluster):
        client.create("age", "dc", memory_kb=0.5)
        client.ingest("age", insert=[1.0] * 5)
        victim = cluster.coordinator.router.shard_for("age")
        report = client.drain(victim)
        assert "age" in report["moved"]
        assert client.total_count("age") == pytest.approx(5.0)

    def test_drop_route(self, client):
        client.create("hot", "dc", partition_boundaries=[10.0])
        client.drop("hot")
        with pytest.raises(UnknownAttributeError):
            client.total_count("hot")

    def test_unknown_shard_is_a_client_error(self, client):
        client.create("age", "dc")
        with pytest.raises(ServiceError) as excinfo:
            client.rebalance("age", "no-such-shard")
        assert "unknown shard" in str(excinfo.value)

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nonsense")
        assert "HTTP 404" in str(excinfo.value)

    def test_get_estimate_via_query_string(self, client):
        client.create("hot", "dc", partition_boundaries=[100.0])
        client.ingest("hot", insert=[50.0] * 10 + [150.0] * 10)
        response = client._request(
            "GET", client._attribute_path("hot", "estimate") + "?op=total"
        )
        assert response["result"] == pytest.approx(20.0)


class TestServiceClientCompatibility:
    """The single-node service surface keeps working against a cluster."""

    def test_statistics_client_drives_a_cluster(self, cluster):
        from repro import StatisticsClient

        host, port = cluster.address
        plain = StatisticsClient(host, port)
        plain.create("age", "dc", memory_kb=0.5)
        plain.ingest("age", insert=[float(v % 90) for v in range(500)])
        assert plain.total_count("age") == pytest.approx(500.0)
        listing = plain.stats()
        assert any(row["name"] == "age" for row in listing["attributes"])
        snapshot = plain.snapshot("age")
        plain.ingest("age", insert=[1.0, 2.0])
        plain.restore("age", snapshot)
        assert plain.total_count("age") == pytest.approx(500.0)

    def test_snapshot_of_partitioned_attribute_is_a_clear_error(self, client):
        client.create("hot", "dc", partition_boundaries=[10.0])
        with pytest.raises(ServiceError, match="range-partitioned"):
            client.snapshot("hot")

    def test_store_stats_cli_works_against_a_cluster(self, cluster):
        import io

        from repro.cli import main

        host, port = cluster.address
        coordinator = cluster.coordinator
        coordinator.create("age", "dc", memory_kb=0.5)
        coordinator.ingest("age", insert=[1.0] * 10)
        out = io.StringIO()
        code = main(["store-stats", "--host", host, "--port", str(port)], out=out)
        assert code == 0
        assert "age" in out.getvalue()
