"""Tests for the scatter-gather ClusterCoordinator over in-process shards."""

import threading

import numpy as np
import pytest

from repro import ClusterError, ConfigurationError, HistogramStore, UnknownAttributeError
from repro.cluster import ClusterCoordinator, LocalShard
from repro.distributed.union import reduce_segments, superimpose
from repro.persistence import histogram_from_dict


@pytest.fixture
def coordinator():
    with ClusterCoordinator(
        [LocalShard(f"shard-{i}") for i in range(4)], global_buckets=48
    ) as running:
        yield running


def ingest_uniform(coordinator, name, n=8000, domain=(0.0, 5000.0), seed=3):
    rng = np.random.default_rng(seed)
    values = rng.uniform(domain[0], domain[1], n)
    coordinator.ingest(name, insert=values.tolist())
    return values


class TestRegistryAndRouting:
    def test_create_places_on_routed_shard(self, coordinator):
        created = coordinator.create("age", "dc", memory_kb=0.5)
        assert created["partitioned"] is False
        shard_id = created["shard"]
        assert shard_id == coordinator.router.shard_for("age")
        assert "age" in coordinator.shard(shard_id).names()

    def test_partitioned_create_places_pieces_on_every_shard(self, coordinator):
        created = coordinator.create(
            "hot", "dc", memory_kb=0.5, partition_boundaries=[1250.0, 2500.0, 3750.0]
        )
        assert created["partitioned"] is True
        assert set(created["pieces"]) == set(coordinator.shard_ids)
        for shard_id in coordinator.shard_ids:
            assert "hot" in coordinator.shard(shard_id).names()

    def test_failed_partitioned_create_withdraws_the_partition(self, coordinator):
        coordinator.shard("shard-0").create("hot", "dc", memory_kb=0.5)
        with pytest.raises(Exception):
            coordinator.create("hot", "dc", partition_boundaries=[100.0])
        assert not coordinator.router.is_partitioned("hot")

    def test_drop_removes_every_piece(self, coordinator):
        coordinator.create("hot", "dc", partition_boundaries=[100.0, 200.0, 300.0])
        coordinator.drop("hot")
        for shard_id in coordinator.shard_ids:
            assert "hot" not in coordinator.shard(shard_id).names()
        assert not coordinator.router.is_partitioned("hot")

    def test_names_lists_partitioned_attributes_once(self, coordinator):
        coordinator.create("age", "dc")
        coordinator.create("hot", "dc", partition_boundaries=[100.0, 200.0, 300.0])
        assert coordinator.names() == ["age", "hot"]

    def test_duplicate_shard_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterCoordinator([LocalShard("a"), LocalShard("a")])


class TestScatterGatherIngest:
    def test_partitioned_ingest_splits_by_value(self, coordinator):
        coordinator.create("hot", "dc", memory_kb=0.5,
                           partition_boundaries=[1250.0, 2500.0, 3750.0])
        values = ingest_uniform(coordinator, "hot")
        partition = coordinator.router.partition_for("hot")
        for shard_id in coordinator.shard_ids:
            expected = sum(1 for v in values if partition.shard_for_value(v) == shard_id)
            held = coordinator.shard(shard_id).store.total_count("hot")
            assert held == pytest.approx(expected)

    def test_cluster_total_conserves_every_value(self, coordinator):
        coordinator.create("hot", "dc", memory_kb=0.5,
                           partition_boundaries=[1250.0, 2500.0, 3750.0])
        values = ingest_uniform(coordinator, "hot")
        assert coordinator.total_count("hot") == pytest.approx(len(values))

    def test_partitioned_deletes_route_by_value(self, coordinator):
        coordinator.create("hot", "dc", memory_kb=0.5, partition_boundaries=[100.0])
        coordinator.ingest("hot", insert=[50.0] * 10 + [150.0] * 10)
        coordinator.ingest("hot", delete=[50.0, 150.0, 150.0])
        assert coordinator.total_count("hot") == pytest.approx(17.0)

    def test_ingest_batch_groups_per_shard(self, coordinator):
        coordinator.create("age", "dc", memory_kb=0.5)
        coordinator.create("hot", "dc", memory_kb=0.5, partition_boundaries=[100.0])
        report = coordinator.ingest_batch(
            {"age": [1.0, 2.0, 3.0], "hot": [50.0, 150.0], "empty": []}
        )
        assert report["inserted"] == 5
        assert sum(report["per_shard"].values()) == 5
        assert coordinator.total_count("age") == pytest.approx(3.0)
        assert coordinator.total_count("hot") == pytest.approx(2.0)

    def test_ingest_batch_applies_deletes(self, coordinator):
        coordinator.create("age", "dc", memory_kb=0.5)
        coordinator.create("hot", "dc", memory_kb=0.5, partition_boundaries=[100.0])
        coordinator.ingest_batch(
            {"age": [10.0] * 6, "hot": [50.0] * 8 + [150.0] * 8}
        )
        report = coordinator.ingest_batch(
            {
                "age": {"insert": [11.0, 12.0], "delete": [10.0, 10.0, 10.0]},
                "hot": {"delete": [50.0, 150.0]},
            }
        )
        assert report["inserted"] == 2
        assert report["deleted"] == 5
        assert sum(report["per_shard"].values()) == 2
        assert sum(report["per_shard_deleted"].values()) == 5
        assert coordinator.total_count("age") == pytest.approx(5.0)
        assert coordinator.total_count("hot") == pytest.approx(14.0)
        # Partitioned deletes must have landed on the piece owning the value.
        partition = coordinator.router.partition_for("hot")
        low_shard = partition.shard_for_value(50.0)
        high_shard = partition.shard_for_value(150.0)
        assert coordinator.shard(low_shard).store.total_count("hot") == pytest.approx(7.0)
        assert coordinator.shard(high_shard).store.total_count("hot") == pytest.approx(7.0)

    def test_unknown_attribute_propagates(self, coordinator):
        with pytest.raises(UnknownAttributeError):
            coordinator.ingest("ghost", insert=[1.0])


class TestMergedEstimates:
    BOUNDARIES = [1250.0, 2500.0, 3750.0]

    def build(self, coordinator, n=12000):
        coordinator.create("hot", "dc", memory_kb=0.5,
                           partition_boundaries=self.BOUNDARIES)
        return ingest_uniform(coordinator, "hot", n=n)

    def reference_store(self, values):
        store = HistogramStore()
        store.create("hot", "dc", memory_kb=0.5)
        store.insert("hot", values.tolist())
        return store

    def test_merged_estimates_close_to_unsharded_reference(self, coordinator):
        values = self.build(coordinator)
        reference = self.reference_store(values)
        total = float(len(values))
        for low, high in ((0.0, 5000.0), (500.0, 1500.0), (2000.0, 3000.0), (100.0, 4900.0)):
            merged = coordinator.estimate_range("hot", low, high)
            single = reference.estimate_range("hot", low, high)
            assert abs(merged - single) <= 0.02 * total

    def test_merged_histogram_respects_bucket_budget(self, coordinator):
        self.build(coordinator)
        assert coordinator.merged_histogram("hot").bucket_count <= 48

    def test_query_batch_is_served_from_one_merged_snapshot(self, coordinator):
        self.build(coordinator)
        response = coordinator.query(
            "hot", [{"op": "total"}, {"op": "range", "low": 0.0, "high": 5000.0}]
        )
        assert response["merged"] is True
        assert response["results"][0] == pytest.approx(response["results"][1], rel=0.01)

    def test_merge_cache_hits_until_a_shard_write(self, coordinator):
        self.build(coordinator)
        first = coordinator.query("hot", [{"op": "total"}])
        again = coordinator.query("hot", [{"op": "total"}])
        assert again["generation"] == first["generation"]
        assert coordinator.merged_histogram("hot") is coordinator.merged_histogram("hot")
        coordinator.ingest("hot", insert=[42.0])
        after = coordinator.query("hot", [{"op": "total"}])
        assert after["generation"] > first["generation"]
        assert after["results"][0] == pytest.approx(first["results"][0] + 1.0)

    def test_cached_merge_equals_from_scratch_rebuild(self, coordinator):
        self.build(coordinator)
        cached = coordinator.merged_histogram("hot")
        partition = coordinator.router.partition_for("hot")
        members = [
            histogram_from_dict(
                dict(coordinator.shard(shard_id).snapshot("hot")["histogram"])
            )
            for shard_id in partition.piece_shard_ids
        ]
        scratch = reduce_segments(superimpose(members), 48)
        assert [
            (b.left, b.right, b.count) for b in cached.buckets()
        ] == [(b.left, b.right, b.count) for b in scratch.buckets()]

    def test_merged_estimates_on_empty_partition_are_zero(self, coordinator):
        coordinator.create("hot", "dc", partition_boundaries=self.BOUNDARIES)
        assert coordinator.total_count("hot") == 0.0
        assert coordinator.estimate_range("hot", 0.0, 5000.0) == 0.0
        assert coordinator.cdf("hot", [0.0, 100.0]) == [0.0, 0.0]

    def test_unpartitioned_query_delegates_to_home_shard(self, coordinator):
        coordinator.create("age", "dc", memory_kb=0.5)
        coordinator.ingest("age", insert=[float(v % 90) for v in range(2000)])
        response = coordinator.query("age", [{"op": "total"}])
        assert response["shard"] == coordinator.router.shard_for("age")
        assert response["results"][0] == pytest.approx(2000.0)


class TestRebalance:
    def test_move_preserves_counts_and_reroutes(self, coordinator):
        coordinator.create("age", "dc", memory_kb=0.5)
        coordinator.ingest("age", insert=[float(v % 90) for v in range(3000)])
        source = coordinator.router.shard_for("age")
        target = next(s for s in coordinator.shard_ids if s != source)
        report = coordinator.rebalance("age", target)
        assert report["moved"] is True
        assert coordinator.router.shard_for("age") == target
        assert coordinator.total_count("age") == pytest.approx(3000.0)
        assert "age" not in coordinator.shard(source).names()

    def test_move_to_current_home_is_a_noop(self, coordinator):
        coordinator.create("age", "dc")
        home = coordinator.router.shard_for("age")
        assert coordinator.rebalance("age", home)["moved"] is False

    def test_partitioned_attribute_cannot_be_rebalanced(self, coordinator):
        coordinator.create("hot", "dc", partition_boundaries=[100.0])
        with pytest.raises(ClusterError):
            coordinator.rebalance("hot", "shard-0")

    def test_writes_during_move_are_buffered_and_replayed(self):
        """Writes arriving mid-copy land exactly once on the target."""
        restore_entered = threading.Event()
        release_restore = threading.Event()

        class SlowRestoreShard(LocalShard):
            def restore(self, name, snapshot):
                restore_entered.set()
                assert release_restore.wait(5.0)
                return super().restore(name, snapshot)

        source = LocalShard("source")
        target = SlowRestoreShard("target")
        coordinator = ClusterCoordinator([source, target])
        coordinator.router.assign("age", "source")
        coordinator.create("age", "dc", memory_kb=0.5)
        coordinator.ingest("age", insert=[float(v % 90) for v in range(1000)])

        mover = threading.Thread(target=coordinator.rebalance, args=("age", "target"))
        mover.start()
        assert restore_entered.wait(5.0)
        # The copy is in flight: these writes must buffer, not block or vanish.
        buffered = coordinator.ingest("age", insert=[1.0, 2.0], delete=[1.0])
        assert buffered["buffered_for_move"] is True
        release_restore.set()
        mover.join(timeout=10.0)
        assert not mover.is_alive()
        assert coordinator.router.shard_for("age") == "target"
        assert coordinator.total_count("age") == pytest.approx(1001.0)
        coordinator.close()

    def test_failed_move_replays_buffer_onto_source(self):
        restore_entered = threading.Event()
        release_restore = threading.Event()

        class FailingRestoreShard(LocalShard):
            def restore(self, name, snapshot):
                restore_entered.set()
                assert release_restore.wait(5.0)
                raise RuntimeError("target exploded")

        source = LocalShard("source")
        target = FailingRestoreShard("target")
        coordinator = ClusterCoordinator([source, target])
        coordinator.router.assign("age", "source")
        coordinator.create("age", "dc", memory_kb=0.5)
        coordinator.ingest("age", insert=[float(v) for v in range(100)])

        failure = []

        def move():
            try:
                coordinator.rebalance("age", "target")
            except RuntimeError as error:
                failure.append(error)

        mover = threading.Thread(target=move)
        mover.start()
        assert restore_entered.wait(5.0)
        coordinator.ingest("age", insert=[500.0, 501.0])
        release_restore.set()
        mover.join(timeout=10.0)
        assert failure, "rebalance should have propagated the restore failure"
        assert coordinator.router.shard_for("age") == "source"
        assert coordinator.total_count("age") == pytest.approx(102.0)
        coordinator.close()

    def test_drain_moves_every_homed_attribute(self, coordinator):
        for index in range(6):
            coordinator.create(f"attribute-{index}", "dc", memory_kb=0.5)
            coordinator.ingest(f"attribute-{index}", insert=[float(index)] * 10)
        coordinator.create("hot", "dc", partition_boundaries=[100.0, 200.0, 300.0])
        victim = coordinator.router.shard_for("attribute-0")
        report = coordinator.drain(victim)
        assert "attribute-0" in report["moved"]
        assert report["skipped_partitioned"] == ["hot"]
        for name in report["moved"]:
            assert coordinator.router.shard_for(name) != victim
        homed = [
            name for name in coordinator.shard(victim).names()
            if not coordinator.router.is_partitioned(name)
        ]
        assert homed == []
        for index in range(6):
            assert coordinator.total_count(f"attribute-{index}") == pytest.approx(10.0)


class TestClusterStats:
    def test_stats_reports_shards_placement_and_merge_cache(self, coordinator):
        coordinator.create("age", "dc")
        coordinator.create("hot", "dc", partition_boundaries=[100.0])
        coordinator.ingest("hot", insert=[50.0, 150.0])
        coordinator.query("hot", [{"op": "total"}])
        stats = coordinator.stats()
        assert {shard["shard_id"] for shard in stats["shards"]} == set(coordinator.shard_ids)
        assert "hot" in stats["placement"]["partitions"]
        assert stats["merge_cache"]["hot"]["generation_sum"] >= 1

    def test_attribute_stats_partitioned_and_not(self, coordinator):
        coordinator.create("age", "dc")
        coordinator.create("hot", "dc", partition_boundaries=[100.0])
        plain = coordinator.attribute_stats("age")
        assert plain["partitioned"] is False
        assert plain["stats"]["name"] == "age"
        partitioned = coordinator.attribute_stats("hot")
        assert partitioned["partitioned"] is True
        assert set(partitioned["pieces"]) == set(
            coordinator.router.partition_for("hot").piece_shard_ids
        )
