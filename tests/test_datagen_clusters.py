"""Unit tests for the cluster-based synthetic distribution generator (Section 6.1)."""

import numpy as np
import pytest

from repro import ClusterDistributionConfig, generate_cluster_values
from repro.datagen.clusters import generate_cluster_distribution
from repro.exceptions import ConfigurationError


class TestConfigValidation:
    def test_defaults_match_paper_reference(self):
        config = ClusterDistributionConfig()
        assert config.n_points == 100_000
        assert config.n_clusters == 2000
        assert config.domain == (0, 5000)
        assert config.shape == "normal"

    def test_invalid_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterDistributionConfig(shape="triangular")

    def test_invalid_correlation_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterDistributionConfig(correlation="sideways")

    def test_invalid_domain_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterDistributionConfig(domain=(10, 10))

    def test_negative_skew_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterDistributionConfig(center_skew=-1.0)

    def test_with_seed_and_scaled(self):
        config = ClusterDistributionConfig(n_points=1000, n_clusters=100)
        reseeded = config.with_seed(42)
        assert reseeded.seed == 42
        assert reseeded.n_points == 1000
        scaled = config.scaled(0.1)
        assert scaled.n_points == 100
        assert scaled.n_clusters == 10
        with pytest.raises(ConfigurationError):
            config.scaled(0.0)


class TestGeneration:
    def test_point_count_and_domain(self, small_cluster_config):
        values = generate_cluster_values(small_cluster_config)
        assert len(values) == small_cluster_config.n_points
        assert values.min() >= small_cluster_config.domain_low
        assert values.max() <= small_cluster_config.domain_high
        assert values.dtype.kind in "iu"

    def test_determinism_per_seed(self, small_cluster_config):
        first = generate_cluster_values(small_cluster_config)
        second = generate_cluster_values(small_cluster_config)
        np.testing.assert_array_equal(first, second)

    def test_different_seeds_differ(self, small_cluster_config):
        other = generate_cluster_values(small_cluster_config.with_seed(99))
        base = generate_cluster_values(small_cluster_config)
        assert not np.array_equal(base, other)

    def test_zero_sd_collapses_clusters(self):
        config = ClusterDistributionConfig(
            n_points=500, n_clusters=5, cluster_sd=0.0, domain=(0, 100), seed=1
        )
        values = generate_cluster_values(config)
        assert len(np.unique(values)) <= 5

    def test_skew_concentrates_points(self):
        flat = ClusterDistributionConfig(
            n_points=5000, n_clusters=50, size_skew=0.0, domain=(0, 1000), seed=4
        )
        steep = ClusterDistributionConfig(
            n_points=5000, n_clusters=50, size_skew=2.5, domain=(0, 1000), seed=4
        )
        flat_max = np.bincount(generate_cluster_values(flat)).max()
        steep_max = np.bincount(generate_cluster_values(steep)).max()
        assert steep_max > flat_max

    @pytest.mark.parametrize("shape", ["normal", "uniform", "exponential"])
    def test_all_shapes_generate(self, shape):
        config = ClusterDistributionConfig(
            n_points=800, n_clusters=10, shape=shape, domain=(0, 500), seed=2
        )
        values = generate_cluster_values(config)
        assert len(values) == 800

    @pytest.mark.parametrize("correlation", ["none", "positive", "negative"])
    def test_all_correlations_generate(self, correlation):
        config = ClusterDistributionConfig(
            n_points=800, n_clusters=10, correlation=correlation, domain=(0, 500), seed=2
        )
        assert len(generate_cluster_values(config)) == 800

    def test_single_cluster(self):
        config = ClusterDistributionConfig(
            n_points=300, n_clusters=1, cluster_sd=1.0, domain=(0, 100), seed=5
        )
        values = generate_cluster_values(config)
        assert len(values) == 300
        assert values.std() < 5

    def test_distribution_wrapper(self, small_cluster_config):
        dist = generate_cluster_distribution(small_cluster_config)
        assert dist.total_count == small_cluster_config.n_points
