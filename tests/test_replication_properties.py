"""Replicated-cluster accuracy property (ISSUE 5 satellite).

With ``replication_factor=2`` and one replica shard killed mid-run under
concurrent writers:

* every write succeeds (the surviving replica of each group applies it),
* every read succeeds (failover), and
* merged estimates for both the range-partitioned and the hashed attribute
  still match an unsharded reference store within a small factor of the
  error bound recorded in ``BENCH_cluster.json`` (see ``BOUND_FACTOR`` for
  why the concurrent-writer scenario compounds the benchmark's
  single-stream bound).

After the run the killed shard is revived and resynced, and every replica
pair must be bit-identical again.
"""

from __future__ import annotations

import json
import pathlib
import threading

import numpy as np
import pytest

from fault_injection import FlakyShard
from repro.cluster import ClusterCoordinator, LocalShard, ShardRouter
from repro.service import HistogramStore

pytestmark = pytest.mark.slow

BENCH_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_cluster.json"
N_SHARDS = 4
N_WRITERS = 3
BATCHES_PER_WRITER = 12
BATCH = 200
DOMAIN_HIGH = 4000.0


#: The BENCH_cluster.json bound was recorded for merged-vs-unsharded on ONE
#: ordered insert stream.  Here both sides carry extra, timing-dependent
#: layout divergence: the cluster's serving replica applied three writers'
#: batches in a nondeterministic interleaving while the reference applied
#: them writer-by-writer, and histogram maintenance is order-sensitive.  The
#: two approximation errors compound, so the assertion allows 2x the
#: recorded bound -- tight enough to catch a lost/duplicated batch (which
#: the exact conservation asserts below catch at 1e-9 anyway), loose enough
#: not to flake on an unlucky interleaving.
BOUND_FACTOR = 2.0


def recorded_error_bound() -> float:
    bench = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    return float(
        bench["sections"]["merged_estimate_accuracy"][
            "recorded_error_bound_fraction_of_total"
        ]
    )


@pytest.mark.parametrize("seed", [3, 17, 42])
def test_estimates_match_unsharded_reference_with_one_replica_killed(seed):
    bound = BOUND_FACTOR * recorded_error_bound()
    shards = [FlakyShard(LocalShard(f"shard-{index}")) for index in range(N_SHARDS)]
    by_id = {shard.shard_id: shard for shard in shards}
    router = ShardRouter([shard.shard_id for shard in shards], replication_factor=2)
    coordinator = ClusterCoordinator(shards, router=router, global_buckets=64)
    try:
        # Two pieces on shard-0/shard-1; their followers land on shard-2/3,
        # so killing ANY single shard leaves every replica group alive.
        coordinator.create(
            "hot", "dc", memory_kb=0.5, partition_boundaries=[DOMAIN_HIGH / 2]
        )
        coordinator.create("hashed", "dc", memory_kb=0.5)

        # The victim is a piece primary: reads MUST fail over.
        victim = by_id[next(iter(coordinator.router.partition_replicas("hot")))]

        streams = {}
        rng = np.random.default_rng(seed)
        for writer_index in range(N_WRITERS):
            centres = rng.choice(np.arange(0, DOMAIN_HIGH, 250), BATCHES_PER_WRITER * BATCH)
            noise = rng.integers(-40, 41, BATCHES_PER_WRITER * BATCH)
            streams[writer_index] = np.clip(
                centres + noise, 0, DOMAIN_HIGH - 1
            ).astype(float)

        kill_at = threading.Barrier(N_WRITERS + 1)
        errors = []

        def writer(index: int) -> None:
            values = streams[index]
            try:
                for batch_index in range(BATCHES_PER_WRITER):
                    if batch_index == BATCHES_PER_WRITER // 2:
                        kill_at.wait(timeout=30)  # kill happens here
                    chunk = values[batch_index * BATCH : (batch_index + 1) * BATCH]
                    coordinator.ingest_batch(
                        {"hot": chunk.tolist(), "hashed": chunk.tolist()}
                    )
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(index,)) for index in range(N_WRITERS)
        ]
        for thread in threads:
            thread.start()
        kill_at.wait(timeout=30)
        victim.down = True
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads), "writers deadlocked"
        assert errors == [], f"writes failed despite a live replica: {errors[0]!r}"

        all_values = np.concatenate([streams[i] for i in range(N_WRITERS)])
        reference = HistogramStore()
        reference.create("hot", "dc", memory_kb=0.5)
        reference.create("hashed", "dc", memory_kb=0.5)
        for index in range(N_WRITERS):
            reference.insert("hot", streams[index])
            reference.insert("hashed", streams[index])

        total = float(len(all_values))
        # Conservation first: no write lost, none double-applied.
        assert coordinator.total_count("hot") == pytest.approx(total, rel=1e-9)
        assert coordinator.total_count("hashed") == pytest.approx(total, rel=1e-9)

        query_rng = np.random.default_rng(1000 + seed)
        for _ in range(25):
            low = float(query_rng.uniform(0, DOMAIN_HIGH * 0.9))
            high = low + float(query_rng.uniform(50, DOMAIN_HIGH / 3))
            for name in ("hot", "hashed"):
                cluster_estimate = coordinator.estimate_range(name, low, high)
                reference_estimate = reference.estimate_range(name, low, high)
                assert abs(cluster_estimate - reference_estimate) <= bound * total, (
                    f"{name} [{low:.0f}, {high:.0f}]: cluster={cluster_estimate:.1f} "
                    f"reference={reference_estimate:.1f} bound={bound * total:.1f}"
                )

        # Revive + resync.  The resynced shard is bit-identical to the
        # replica it was seeded from (a full-state copy).  Replica pairs the
        # kill never touched hold the same data *multiset* but may have
        # diverged bucket layouts -- concurrent writers' batches can apply
        # in different orders per replica, and histogram maintenance is
        # order-sensitive -- so for those only conservation is asserted.
        victim.down = False
        report = coordinator.resync(victim.shard_id)
        assert coordinator.stats()["stale_replicas"] == []
        for name, source_id in report["resynced"].items():
            source_snapshot = by_id[source_id].inner.snapshot(name)
            victim_snapshot = victim.inner.snapshot(name)
            for key in ("histogram", "inserted", "deleted"):
                assert victim_snapshot[key] == source_snapshot[key]
        for name in ("hot", "hashed"):
            for replicas in coordinator.router.replica_sets_for(name):
                group_totals = {
                    sid: by_id[sid].inner.store.total_count(name) for sid in replicas
                }
                first = next(iter(group_totals.values()))
                for shard_total in group_totals.values():
                    assert shard_total == pytest.approx(first, rel=1e-9), group_totals
    finally:
        coordinator.close()
