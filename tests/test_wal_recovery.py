"""Crash-recovery tests for the write-ahead log (repro.service.wal).

The durability contract under test:

* ``HistogramStore.recover`` rebuilds the exact pre-crash store -- histogram
  state, generation counters, inserted/deleted counters -- from the
  compaction checkpoint plus the log tail;
* a torn or corrupted tail (crash mid-append, disk damage) silently drops
  everything from the first damaged record on: recovery reproduces the store
  *as of the last intact record*, never crashes, never double-applies;
* compaction + recovery is a fixed point: checkpointing and reopening is
  invisible to the logical state.

The fuzz suite drives a seeded random workload, then truncates/corrupts the
log at arbitrary byte offsets and checks the recovered store bit-identically
against a reference built by replaying the surviving operation prefix into a
fresh store.  The oracle is independent of the recovery code path: the
workload records its own operation log, and the pristine file's framing
(parsed before any damage) maps a damage offset to the surviving prefix
length.
"""

from __future__ import annotations

import contextlib
import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, HistogramError
from repro.service import DurabilityConfig, HistogramStore, IngestPipeline
from repro.service.wal import WAL_FILE_NAME, WriteAheadLog, replay_wal

ATTRIBUTES = (("age", "dc"), ("price", "dvo"), ("load", "dado"))


def durable_store(tmp_path, **kwargs) -> HistogramStore:
    kwargs.setdefault("compact_every", None)
    return HistogramStore(durability=DurabilityConfig(tmp_path, **kwargs))


def state_of(store: HistogramStore):
    """Full comparable state: histograms, generations, lifetime counters."""
    return store.snapshot_all()


def run_workload(store: HistogramStore, seed: int, n_ops: int = 30, create: bool = True):
    """A seeded random single-threaded workload; returns the op log.

    Each op log entry corresponds 1:1, in order, to a WAL record
    (single-threaded, and every generated op is one the store accepts and
    therefore logs), so WAL sequence numbers index directly into the op
    log -- the fuzz oracle depends on that.  Deletes may legitimately fail
    mid-batch (DeletionError on an empty histogram); the workload moves on,
    exactly like a production writer -- the WAL still holds the record and
    replay reproduces the same partial apply.  Pass ``create=False`` when
    the attributes already exist (a rejected create writes no record and
    would break the 1:1 mapping).
    """
    rng = np.random.default_rng(seed)
    oplog = []

    def apply(op, *args):
        oplog.append((op, *args))
        with contextlib.suppress(HistogramError):
            if op == "create":
                store.create(args[0], args[1], memory_kb=0.5)
            elif op == "drop":
                store.drop(args[0])
            elif op == "insert":
                store.insert(args[0], args[1], repartition_interval=args[2])
            elif op == "delete":
                store.delete(args[0], args[1])

    if create:
        for name, kind in ATTRIBUTES:
            apply("create", name, kind)
    names = [name for name, _ in ATTRIBUTES]
    for _ in range(n_ops):
        roll = rng.random()
        name = names[int(rng.integers(len(names)))]
        if roll < 0.62:
            values = rng.integers(0, 300, int(rng.integers(1, 60))).astype(float).tolist()
            apply("insert", name, values, int(rng.choice([1, 16, 64])))
        elif roll < 0.85:
            values = rng.integers(0, 300, int(rng.integers(1, 12))).astype(float).tolist()
            apply("delete", name, values)
        elif roll < 0.93:
            apply("drop", name)
            apply("create", name, dict(ATTRIBUTES)[name])
        else:
            values = rng.integers(300, 600, int(rng.integers(1, 30))).astype(float).tolist()
            apply("insert", name, values, 16)
    return oplog


def replay_reference(oplog) -> HistogramStore:
    """Independent oracle: apply an op-log prefix to a fresh plain store."""
    store = HistogramStore()
    for entry in oplog:
        op = entry[0]
        with contextlib.suppress(HistogramError):
            if op == "create":
                store.create(entry[1], entry[2], memory_kb=0.5)
            elif op == "drop":
                store.drop(entry[1])
            elif op == "insert":
                store.insert(entry[1], entry[2], repartition_interval=entry[3])
            elif op == "delete":
                store.delete(entry[1], entry[2])
    return store


class TestWalFraming:
    def test_append_replay_round_trip(self, tmp_path):
        path = tmp_path / WAL_FILE_NAME
        with WriteAheadLog(path) as wal:
            for index in range(5):
                wal.append({"op": "insert", "name": "a", "values": [float(index)]})
        records, end = replay_wal(path)
        assert [r.seq for r in records] == [1, 2, 3, 4, 5]
        assert records[-1].end_offset == end == path.stat().st_size
        assert records[2].record["values"] == [2.0]

    def test_replay_missing_file_is_empty(self, tmp_path):
        records, end = replay_wal(tmp_path / "absent.log")
        assert records == [] and end == 0

    def test_truncated_tail_drops_only_last_record(self, tmp_path):
        path = tmp_path / WAL_FILE_NAME
        with WriteAheadLog(path) as wal:
            for index in range(4):
                wal.append({"op": "insert", "name": "a", "values": [float(index)]})
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        records, end = replay_wal(path)
        assert [r.record["values"] for r in records] == [[0.0], [1.0], [2.0]]
        assert end == records[-1].end_offset

    def test_corrupt_byte_stops_replay_at_damage(self, tmp_path):
        path = tmp_path / WAL_FILE_NAME
        with WriteAheadLog(path) as wal:
            for index in range(4):
                wal.append({"op": "insert", "name": "a", "values": [float(index)]})
        records, _ = replay_wal(path)
        data = bytearray(path.read_bytes())
        damage = records[1].end_offset + 5  # inside the third record
        data[damage] ^= 0xFF
        path.write_bytes(bytes(data))
        survivors, _ = replay_wal(path)
        assert [r.seq for r in survivors] == [1, 2]

    def test_append_after_recovery_truncates_torn_tail(self, tmp_path):
        path = tmp_path / WAL_FILE_NAME
        with WriteAheadLog(path) as wal:
            wal.append({"op": "insert", "name": "a", "values": [1.0]})
            wal.append({"op": "insert", "name": "a", "values": [2.0]})
        path.write_bytes(path.read_bytes()[:-4])
        records, valid_end = replay_wal(path)
        with WriteAheadLog(path, start_seq=records[-1].seq, truncate_at=valid_end) as wal:
            wal.append({"op": "insert", "name": "a", "values": [3.0]})
        records, _ = replay_wal(path)
        assert [(r.seq, r.record["values"]) for r in records] == [
            (1, [1.0]),
            (2, [3.0]),
        ]


class TestStoreDurability:
    def test_constructor_refuses_existing_wal_state(self, tmp_path):
        store = durable_store(tmp_path)
        store.create("age", "dc")
        store.close()
        with pytest.raises(ConfigurationError, match="recover"):
            HistogramStore(durability=DurabilityConfig(tmp_path))

    def test_recover_reproduces_store_exactly(self, tmp_path):
        store = durable_store(tmp_path)
        oplog = run_workload(store, seed=11)
        store.close()
        recovered = HistogramStore.recover(tmp_path)
        assert state_of(recovered) == state_of(store)
        assert state_of(recovered) == state_of(replay_reference(oplog))

    def test_recovered_store_stays_durable(self, tmp_path):
        store = durable_store(tmp_path)
        store.create("age", "dc", memory_kb=0.5)
        store.insert("age", [1.0, 2.0, 3.0])
        store.close()
        recovered = HistogramStore.recover(tmp_path)
        recovered.insert("age", [4.0, 5.0])
        recovered.close()
        second = HistogramStore.recover(tmp_path)
        assert state_of(second) == state_of(recovered)
        assert second.total_count("age") == pytest.approx(5.0)

    def test_pipeline_flushes_reach_the_wal(self, tmp_path):
        store = durable_store(tmp_path)
        store.create("age", "dc", memory_kb=0.5)
        with IngestPipeline(store, max_batch=64) as pipeline:
            for value in range(500):
                pipeline.submit("age", [float(value % 90)])
        store.close()
        recovered = HistogramStore.recover(tmp_path)
        assert recovered.total_count("age") == pytest.approx(500.0)
        assert state_of(recovered) == state_of(store)

    def test_compact_then_recover_is_fixed_point(self, tmp_path):
        store = durable_store(tmp_path)
        run_workload(store, seed=5)
        store.compact()
        store.insert("age", [1.0, 2.0])  # a tail past the checkpoint
        store.close()
        first = HistogramStore.recover(tmp_path)
        assert state_of(first) == state_of(store)
        first.compact()
        first.close()
        second = HistogramStore.recover(tmp_path)
        assert state_of(second) == state_of(first)

    def test_auto_compaction_triggers_and_preserves_state(self, tmp_path):
        store = HistogramStore(
            durability=DurabilityConfig(tmp_path, compact_every=10)
        )
        run_workload(store, seed=3)
        assert (tmp_path / "snapshot.json").exists()
        checkpoint = json.loads((tmp_path / "snapshot.json").read_text())
        assert checkpoint["last_seq"] > 0
        store.close()
        recovered = HistogramStore.recover(tmp_path, compact_every=10)
        assert state_of(recovered) == state_of(store)

    def test_compact_requires_durability(self):
        with pytest.raises(ConfigurationError):
            HistogramStore().compact()

    def test_recover_surfaces_unknown_wal_ops(self, tmp_path):
        """A CRC-valid record with an unrecognised op (a newer log format?)
        must fail recovery loudly, not vanish from the replayed history."""
        store = durable_store(tmp_path)
        store.create("age", "dc", memory_kb=0.5)
        store.close()
        wal = WriteAheadLog(tmp_path / WAL_FILE_NAME, start_seq=1)
        wal.append({"op": "frobnicate", "name": "age"})
        wal.close()
        with pytest.raises(ConfigurationError, match="unknown WAL record op"):
            HistogramStore.recover(tmp_path)


@pytest.mark.slow
class TestCrashRecoveryFuzz:
    """Seeded byte-level damage at arbitrary offsets, exact-prefix recovery."""

    N_DAMAGE_POINTS = 12

    def _damage_points(self, rng, size: int):
        # Arbitrary offsets, plus the edges (empty file, last byte).
        points = sorted(set(rng.integers(0, size, self.N_DAMAGE_POINTS).tolist()))
        return [0, size - 1, *points]

    def _surviving_prefix(self, wal_bytes_path, offset: int) -> int:
        """How many records survive damage at ``offset`` (pristine framing)."""
        records, _ = replay_wal(wal_bytes_path)
        return sum(1 for record in records if record.end_offset <= offset)

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_truncation_recovers_exact_prefix(self, tmp_path, seed):
        store = durable_store(tmp_path)
        oplog = run_workload(store, seed=seed, n_ops=40)
        store.close()
        wal_path = tmp_path / WAL_FILE_NAME
        pristine = wal_path.read_bytes()
        rng = np.random.default_rng(1000 + seed)
        for offset in self._damage_points(rng, len(pristine)):
            wal_path.write_bytes(pristine[:offset])
            n_intact = self._surviving_prefix(wal_path, offset)
            recovered = HistogramStore.recover(tmp_path)
            reference = replay_reference(oplog[:n_intact])
            assert state_of(recovered) == state_of(reference), (
                f"seed={seed} truncation at {offset} "
                f"({n_intact}/{len(oplog)} records intact)"
            )
            recovered.close()
            wal_path.write_bytes(pristine)  # undo recovery's truncation

    @pytest.mark.parametrize("seed", [2, 19])
    def test_corruption_recovers_exact_prefix(self, tmp_path, seed):
        store = durable_store(tmp_path)
        oplog = run_workload(store, seed=seed, n_ops=40)
        store.close()
        wal_path = tmp_path / WAL_FILE_NAME
        pristine = wal_path.read_bytes()
        rng = np.random.default_rng(2000 + seed)
        for offset in self._damage_points(rng, len(pristine)):
            damaged = bytearray(pristine)
            damaged[offset] ^= 0xFF
            wal_path.write_bytes(bytes(damaged))
            n_intact = self._surviving_prefix(wal_path, offset)
            recovered = HistogramStore.recover(tmp_path)
            reference = replay_reference(oplog[:n_intact])
            assert state_of(recovered) == state_of(reference), (
                f"seed={seed} corruption at {offset}"
            )
            recovered.close()
            wal_path.write_bytes(pristine)

    @pytest.mark.parametrize("seed", [4, 31])
    def test_tail_damage_after_compaction(self, tmp_path, seed):
        """Checkpoint + damaged tail: recovery = checkpoint ops + intact tail."""
        store = durable_store(tmp_path)
        oplog = run_workload(store, seed=seed, n_ops=25)
        checkpoint_ops = len(oplog)  # single-threaded: seq == op index
        store.compact()
        oplog += run_workload(store, seed=seed + 1, n_ops=25, create=False)
        store.close()
        wal_path = tmp_path / WAL_FILE_NAME
        pristine = wal_path.read_bytes()
        rng = np.random.default_rng(3000 + seed)
        for offset in self._damage_points(rng, len(pristine)):
            wal_path.write_bytes(pristine[:offset])
            n_tail = self._surviving_prefix(wal_path, offset)
            recovered = HistogramStore.recover(tmp_path)
            reference = replay_reference(oplog[: checkpoint_ops + n_tail])
            assert state_of(recovered) == state_of(reference), (
                f"seed={seed} tail truncation at {offset}"
            )
            recovered.close()
            wal_path.write_bytes(pristine)
