"""Unit tests for the phi algebra (Eqs. 3-5) and split/merge operations."""

import pytest

from repro import DeviationMetric, SubBucketedBucket
from repro.core.deviation import (
    bucket_phi,
    merge_sub_buckets,
    merged_phi,
    segments_phi,
    split_bucket,
)
from repro.exceptions import ConfigurationError


class TestDeviationMetric:
    def test_coerce_from_string(self):
        assert DeviationMetric.coerce("variance") is DeviationMetric.VARIANCE
        assert DeviationMetric.coerce("absolute") is DeviationMetric.ABSOLUTE
        assert DeviationMetric.coerce(DeviationMetric.VARIANCE) is DeviationMetric.VARIANCE

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            DeviationMetric.coerce("median")

    def test_aggregate(self):
        assert DeviationMetric.VARIANCE.aggregate(-3.0) == 9.0
        assert DeviationMetric.ABSOLUTE.aggregate(-3.0) == 3.0


class TestSegmentsPhi:
    def test_uniform_segments_have_zero_phi(self):
        segments = [(0.0, 5.0, 10.0), (5.0, 10.0, 10.0)]
        assert segments_phi(segments, "variance") == pytest.approx(0.0)
        assert segments_phi(segments, "absolute") == pytest.approx(0.0)

    def test_known_variance_value(self):
        # Two sub-ranges of 5 values each, frequencies 4 and 2, average 3:
        # phi = 5 * (4 - 3)^2 + 5 * (2 - 3)^2 = 10.
        segments = [(0.0, 5.0, 20.0), (5.0, 10.0, 10.0)]
        assert segments_phi(segments, "variance") == pytest.approx(10.0)

    def test_known_absolute_value(self):
        segments = [(0.0, 5.0, 20.0), (5.0, 10.0, 10.0)]
        assert segments_phi(segments, "absolute") == pytest.approx(10.0)

    def test_empty_segments(self):
        assert segments_phi([], "variance") == 0.0

    def test_zero_count_segments(self):
        assert segments_phi([(0.0, 1.0, 0.0), (1.0, 2.0, 0.0)], "variance") == 0.0

    def test_variance_penalises_outliers_more(self):
        mild = [(0.0, 1.0, 6.0), (1.0, 2.0, 4.0)]
        extreme = [(0.0, 1.0, 9.0), (1.0, 2.0, 1.0)]
        variance_ratio = segments_phi(extreme, "variance") / segments_phi(mild, "variance")
        absolute_ratio = segments_phi(extreme, "absolute") / segments_phi(mild, "absolute")
        assert variance_ratio > absolute_ratio

    def test_invalid_value_unit(self):
        with pytest.raises(ConfigurationError):
            segments_phi([(0.0, 1.0, 1.0)], "variance", value_unit=0.0)


class TestBucketAndMergePhi:
    def test_balanced_bucket_has_zero_phi(self):
        bucket = SubBucketedBucket(0.0, 10.0, 25.0, 25.0)
        assert bucket_phi(bucket) == pytest.approx(0.0)

    def test_unbalanced_bucket_has_positive_phi(self):
        bucket = SubBucketedBucket(0.0, 10.0, 40.0, 10.0)
        assert bucket_phi(bucket) > 0.0
        assert bucket_phi(bucket, "absolute") > 0.0

    def test_merge_never_decreases_phi(self):
        first = SubBucketedBucket(0.0, 10.0, 30.0, 10.0)
        second = SubBucketedBucket(10.0, 20.0, 5.0, 45.0)
        for metric in ("variance", "absolute"):
            combined = merged_phi(first, second, metric)
            separate = bucket_phi(first, metric) + bucket_phi(second, metric)
            assert combined >= separate - 1e-9

    def test_merging_similar_buckets_is_cheap(self):
        similar_a = SubBucketedBucket(0.0, 10.0, 20.0, 20.0)
        similar_b = SubBucketedBucket(10.0, 20.0, 20.0, 20.0)
        different = SubBucketedBucket(10.0, 20.0, 200.0, 200.0)
        assert merged_phi(similar_a, similar_b) < merged_phi(similar_a, different)


class TestMergeOperation:
    def test_merge_preserves_count_and_range(self):
        first = SubBucketedBucket(0.0, 10.0, 30.0, 10.0)
        second = SubBucketedBucket(10.0, 18.0, 5.0, 45.0)
        merged = merge_sub_buckets(first, second)
        assert merged.left == 0.0
        assert merged.right == 18.0
        assert merged.count == pytest.approx(90.0)

    def test_merge_is_order_insensitive(self):
        first = SubBucketedBucket(0.0, 10.0, 30.0, 10.0)
        second = SubBucketedBucket(10.0, 18.0, 5.0, 45.0)
        assert merge_sub_buckets(first, second) == merge_sub_buckets(second, first)

    def test_merge_with_point_mass(self):
        point = SubBucketedBucket(20.0, 20.0, 7.0, 0.0)
        regular = SubBucketedBucket(0.0, 10.0, 4.0, 4.0)
        merged = merge_sub_buckets(regular, point)
        assert merged.count == pytest.approx(15.0)
        assert merged.right == 20.0

    def test_overlapping_buckets_rejected(self):
        first = SubBucketedBucket(0.0, 10.0, 1.0, 1.0)
        second = SubBucketedBucket(5.0, 15.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            merge_sub_buckets(first, second)


class TestSplitOperation:
    def test_split_halves_have_zero_phi(self):
        bucket = SubBucketedBucket(0.0, 10.0, 30.0, 10.0)
        left, right = split_bucket(bucket)
        assert bucket_phi(left) == pytest.approx(0.0)
        assert bucket_phi(right) == pytest.approx(0.0)

    def test_split_preserves_count_and_borders(self):
        bucket = SubBucketedBucket(0.0, 10.0, 30.0, 10.0)
        left, right = split_bucket(bucket)
        assert left.count + right.count == pytest.approx(40.0)
        assert left.left == 0.0
        assert left.right == 5.0
        assert right.left == 5.0
        assert right.right == 10.0

    def test_point_mass_cannot_be_split(self):
        with pytest.raises(ConfigurationError):
            split_bucket(SubBucketedBucket(3.0, 3.0, 5.0, 0.0))
