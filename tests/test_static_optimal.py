"""Unit tests for the optimal DP partitioning, SVO, SADO and SSBM histograms."""

import numpy as np
import pytest

from repro import (
    DataDistribution,
    EquiWidthHistogram,
    SADOHistogram,
    SSBMHistogram,
    VOptimalHistogram,
    ks_statistic,
)
from repro.core.deviation import DeviationMetric
from repro.exceptions import ConfigurationError
from repro.static.base import frequency_elements
from repro.static.optimal_dp import (
    absolute_cost_matrix,
    optimal_partition,
    variance_cost_matrix,
)
from repro.static.ssbm import ssbm_partition


def _partition_cost(freqs, weights, partition, metric):
    cost = 0.0
    for start, end in partition:
        segment_freqs = freqs[start : end + 1]
        segment_weights = weights[start : end + 1]
        mean = np.average(segment_freqs, weights=segment_weights)
        if metric is DeviationMetric.VARIANCE:
            cost += float(np.sum(segment_weights * (segment_freqs - mean) ** 2))
        else:
            cost += float(np.sum(segment_weights * np.abs(segment_freqs - mean)))
    return cost


class TestCostMatrices:
    def test_variance_cost_known_values(self):
        freqs = np.array([1.0, 3.0, 5.0])
        cost = variance_cost_matrix(freqs)
        assert cost[0, 0] == 0.0
        assert cost[0, 1] == pytest.approx(2.0)  # mean 2, (1-2)^2 + (3-2)^2
        assert cost[0, 2] == pytest.approx(8.0)  # mean 3, 4 + 0 + 4

    def test_absolute_cost_known_values(self):
        freqs = np.array([1.0, 3.0, 5.0])
        cost = absolute_cost_matrix(freqs)
        assert cost[0, 1] == pytest.approx(2.0)
        assert cost[0, 2] == pytest.approx(4.0)

    def test_weighted_variance_matches_expanded_form(self):
        freqs = np.array([2.0, 0.0, 7.0])
        weights = np.array([1.0, 5.0, 2.0])
        expanded = np.repeat(freqs, weights.astype(int))
        weighted_cost = variance_cost_matrix(freqs, weights)[0, 2]
        expected = np.sum((expanded - expanded.mean()) ** 2)
        assert weighted_cost == pytest.approx(expected)

    def test_weighted_absolute_matches_expanded_form(self):
        freqs = np.array([2.0, 0.0, 7.0])
        weights = np.array([1.0, 5.0, 2.0])
        expanded = np.repeat(freqs, weights.astype(int))
        weighted_cost = absolute_cost_matrix(freqs, weights)[0, 2]
        expected = np.sum(np.abs(expanded - expanded.mean()))
        assert weighted_cost == pytest.approx(expected)

    def test_weight_validation(self):
        with pytest.raises(ConfigurationError):
            variance_cost_matrix(np.array([1.0, 2.0]), np.array([1.0]))
        with pytest.raises(ConfigurationError):
            variance_cost_matrix(np.array([1.0, 2.0]), np.array([1.0, 0.0]))


class TestOptimalPartition:
    def test_partition_is_contiguous_and_complete(self):
        freqs = np.array([5.0, 5.0, 1.0, 1.0, 9.0, 9.0])
        partition = optimal_partition(freqs, 3)
        assert partition[0][0] == 0
        assert partition[-1][1] == len(freqs) - 1
        for (_, end_a), (start_b, _) in zip(partition, partition[1:], strict=False):
            assert start_b == end_a + 1

    def test_obvious_grouping_is_found(self):
        freqs = np.array([5.0, 5.0, 1.0, 1.0, 9.0, 9.0])
        partition = optimal_partition(freqs, 3)
        assert partition == [(0, 1), (2, 3), (4, 5)]

    def test_enough_buckets_gives_zero_cost(self):
        freqs = np.array([3.0, 1.0, 4.0, 1.0])
        partition = optimal_partition(freqs, 10)
        assert partition == [(i, i) for i in range(4)]

    def test_optimal_beats_greedy_ssbm_or_ties(self, rng):
        freqs = rng.integers(0, 50, size=40).astype(float)
        weights = np.ones(40)
        for metric in (DeviationMetric.VARIANCE, DeviationMetric.ABSOLUTE):
            optimal = optimal_partition(freqs, 6, metric)
            greedy = ssbm_partition(freqs, 6, metric)
            assert _partition_cost(freqs, weights, optimal, metric) <= _partition_cost(
                freqs, weights, greedy, metric
            ) + 1e-9

    def test_empty_input(self):
        assert optimal_partition(np.array([]), 3) == []


class TestSSBMPartition:
    def test_partition_is_contiguous_and_complete(self, rng):
        freqs = rng.integers(0, 30, size=60).astype(float)
        partition = ssbm_partition(freqs, 7)
        assert partition[0][0] == 0
        assert partition[-1][1] == 59
        assert len(partition) == 7
        for (_, end_a), (start_b, _) in zip(partition, partition[1:], strict=False):
            assert start_b == end_a + 1

    def test_merges_most_similar_neighbours_first(self):
        freqs = np.array([10.0, 10.0, 50.0, 10.0])
        partition = ssbm_partition(freqs, 3)
        assert (0, 1) in partition

    def test_budget_not_smaller_than_values(self):
        freqs = np.array([1.0, 2.0, 3.0])
        assert ssbm_partition(freqs, 5) == [(0, 0), (1, 1), (2, 2)]

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            ssbm_partition(np.array([1.0]), 0)


class TestFrequencyElements:
    def test_no_gaps_for_contiguous_values(self):
        data = DataDistribution([1, 2, 2, 3])
        starts, ends, freqs, weights = frequency_elements(data)
        np.testing.assert_array_equal(starts, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(freqs, [1.0, 2.0, 1.0])
        np.testing.assert_array_equal(weights, [1.0, 1.0, 1.0])

    def test_gap_elements_cover_missing_values(self):
        data = DataDistribution([1, 5])
        starts, ends, freqs, weights = frequency_elements(data)
        assert len(starts) == 3
        assert freqs[1] == 0.0
        assert weights[1] == 3.0  # values 2, 3, 4 are missing
        assert starts[1] == 2.0
        assert ends[1] == 4.0

    def test_gaps_can_be_disabled(self):
        data = DataDistribution([1, 5])
        starts, _, freqs, weights = frequency_elements(data, include_gaps=False)
        assert len(starts) == 2
        assert np.all(weights == 1.0)

    def test_custom_value_unit(self):
        data = DataDistribution([1.0, 1.03])
        _, _, freqs, weights = frequency_elements(data, value_unit=0.01)
        assert len(freqs) == 3
        assert weights[1] == pytest.approx(2.0)


class TestOptimalHistograms:
    def test_svo_and_sado_preserve_counts(self, small_distribution):
        for cls in (VOptimalHistogram, SADOHistogram):
            histogram = cls.build(small_distribution, 12)
            assert histogram.total_count == pytest.approx(small_distribution.total_count)
            assert histogram.bucket_count <= small_distribution.distinct_count * 2 + 1

    def test_svo_isolates_extreme_outlier(self):
        values = list(range(50)) + [25] * 500
        truth = DataDistribution(values)
        histogram = VOptimalHistogram.build(truth, 8)
        outlier_buckets = [
            b for b in histogram.buckets() if b.left <= 25 <= b.right and b.count >= 400
        ]
        assert outlier_buckets and outlier_buckets[0].is_point_mass

    def test_svo_beats_equi_width(self, small_distribution):
        svo = VOptimalHistogram.build(small_distribution, 12)
        equi_width = EquiWidthHistogram.build(small_distribution, 12)
        assert ks_statistic(small_distribution, svo, value_unit=1.0) <= ks_statistic(
            small_distribution, equi_width, value_unit=1.0
        )

    def test_static_sado_close_to_svo(self, small_distribution):
        # Section 4.1: in the static case the two objectives give essentially
        # the same quality.
        svo = ks_statistic(
            small_distribution, VOptimalHistogram.build(small_distribution, 12), value_unit=1.0
        )
        sado = ks_statistic(
            small_distribution, SADOHistogram.build(small_distribution, 12), value_unit=1.0
        )
        assert sado <= 2.5 * svo + 0.02
        assert svo <= 2.5 * sado + 0.02


class TestSSBMHistogram:
    def test_count_preserved(self, small_distribution):
        histogram = SSBMHistogram.build(small_distribution, 20)
        assert histogram.total_count == pytest.approx(small_distribution.total_count)

    def test_exact_when_budget_allows(self, skewed_distribution):
        histogram = SSBMHistogram.build(
            skewed_distribution, 100, include_gaps=False
        )
        assert ks_statistic(skewed_distribution, histogram) == pytest.approx(0.0, abs=1e-12)

    def test_quality_close_to_svo(self, small_distribution):
        # Section 5: SSBM is comparable in quality to V-Optimal.
        ssbm = ks_statistic(
            small_distribution, SSBMHistogram.build(small_distribution, 12), value_unit=1.0
        )
        svo = ks_statistic(
            small_distribution, VOptimalHistogram.build(small_distribution, 12), value_unit=1.0
        )
        assert ssbm <= 3.0 * svo + 0.01

    def test_absolute_metric_variant(self, small_distribution):
        histogram = SSBMHistogram.build(small_distribution, 12, metric="absolute")
        assert histogram.total_count == pytest.approx(small_distribution.total_count)
