"""Unit tests for the persistent binary shard transport.

Covers the frame codec (WAL-style ``magic | length | crc32 | JSON``
framing), the error-reconstruction whitelist, the pooled client's REP011
retry discipline (connect-phase always retriable, post-wire only for
idempotent ops), and the recording-proxy scatter fast path.
"""

import socket
import struct
import threading

import pytest

from repro.cluster import BinaryShardClient, BinaryShardServer, LocalShard, ProcessShard
from repro.cluster.transport import (
    IDEMPOTENT_OPS,
    FrameError,
    _FrameParser,
    build_exception,
    describe_exception,
    encode_frame,
    try_pipelined_scatter,
)
from repro.exceptions import (
    DuplicateAttributeError,
    ServiceError,
    ShardUnavailableError,
    UnknownAttributeError,
)
from repro.service import HistogramStore


@pytest.fixture
def server():
    store = HistogramStore()
    backend = LocalShard("shard-0", store)
    with BinaryShardServer(backend) as running:
        yield running
    store.close()


@pytest.fixture
def client(server):
    host, port = server.address
    c = BinaryShardClient(host, port, timeout=10.0, retries=2, retry_backoff=0.01)
    yield c
    c.close()


@pytest.fixture
def shard(client):
    return ProcessShard("shard-0", client)


class TestFrameCodec:
    def test_roundtrip(self):
        parser = _FrameParser()
        parser.feed(encode_frame({"id": 1, "op": "ping", "args": {}}))
        assert parser.pop() == {"id": 1, "op": "ping", "args": {}}
        assert parser.pop() is None

    def test_incremental_feed(self):
        frame = encode_frame({"id": 2, "ok": True, "result": [1.5, 2.5]})
        parser = _FrameParser()
        for offset in range(len(frame)):
            parser.feed(frame[offset : offset + 1])
        assert parser.pop() == {"id": 2, "ok": True, "result": [1.5, 2.5]}

    def test_two_frames_one_buffer(self):
        parser = _FrameParser()
        parser.feed(encode_frame({"id": 1}) + encode_frame({"id": 2}))
        assert parser.pop() == {"id": 1}
        assert parser.pop() == {"id": 2}

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame({"id": 1}))
        frame[0:2] = b"WR"  # a WAL record is NOT a transport frame
        parser = _FrameParser()
        parser.feed(bytes(frame))
        with pytest.raises(FrameError, match="magic"):
            parser.pop()

    def test_corrupt_payload_fails_crc(self):
        frame = bytearray(encode_frame({"id": 1, "op": "ingest"}))
        frame[-1] ^= 0xFF
        parser = _FrameParser()
        parser.feed(bytes(frame))
        with pytest.raises(FrameError, match="crc32"):
            parser.pop()

    def test_oversize_length_rejected_before_buffering(self):
        header = struct.Struct(">2sII").pack(b"SB", 1 << 30, 0)
        parser = _FrameParser()
        parser.feed(header)
        with pytest.raises(FrameError, match="cap"):
            parser.pop()

    def test_non_object_payload_rejected(self):
        body = b"[1,2,3]"
        import zlib

        frame = struct.Struct(">2sII").pack(b"SB", len(body), zlib.crc32(body)) + body
        parser = _FrameParser()
        parser.feed(frame)
        with pytest.raises(FrameError, match="object"):
            parser.pop()


class TestErrorReconstruction:
    def test_unknown_attribute_keeps_name(self):
        info = describe_exception(UnknownAttributeError("age"))
        rebuilt = build_exception(info)
        assert isinstance(rebuilt, UnknownAttributeError)
        assert rebuilt.name == "age"

    def test_duplicate_attribute_keeps_name(self):
        rebuilt = build_exception(describe_exception(DuplicateAttributeError("age")))
        assert isinstance(rebuilt, DuplicateAttributeError)
        assert rebuilt.name == "age"

    def test_unlisted_type_degrades_to_service_error(self):
        rebuilt = build_exception({"type": "SystemExit", "message": "nope"})
        assert type(rebuilt) is ServiceError
        assert "SystemExit" in str(rebuilt)

    def test_empty_info_degrades_to_service_error(self):
        assert isinstance(build_exception({}), ServiceError)


class TestRoundTrip:
    def test_create_ingest_query_stats(self, shard):
        shard.create("age", "dc", memory_kb=0.5)
        shard.ingest("age", insert=[float(v % 50) for v in range(500)])
        stats = shard.stats("age")
        assert stats["total_count"] == pytest.approx(500.0)
        reply = shard.query("age", [{"op": "range", "low": 0.0, "high": 50.0}])
        [estimate] = reply["results"]
        assert estimate == pytest.approx(500.0, rel=0.05)
        assert shard.names() == ["age"]
        assert shard.health()["status"] == "ok"

    def test_snapshot_restore_bit_identical(self, shard):
        shard.create("age", "dc", memory_kb=0.5)
        shard.ingest("age", insert=[float(v % 90) for v in range(700)])
        snapshot = shard.snapshot("age")
        shard.drop("age")
        shard.create("age", "dc", memory_kb=0.5)
        shard.restore("age", snapshot)
        restored = shard.snapshot("age")
        # Identical state; only the restored attribute's own mutation counter
        # differs (create + restore each bump it).
        assert {k: v for k, v in restored.items() if k != "generation"} == {
            k: v for k, v in snapshot.items() if k != "generation"
        }

    def test_application_error_crosses_the_wire(self, shard):
        with pytest.raises(UnknownAttributeError) as excinfo:
            shard.stats("missing")
        assert excinfo.value.name == "missing"

    def test_generation_advances(self, shard):
        shard.create("age", "dc", memory_kb=0.5)
        before = shard.generation("age")
        shard.ingest("age", insert=[1.0])
        assert shard.generation("age") > before

    def test_ping_answers_without_backend_dispatch(self, client):
        assert client.call("ping")["status"] == "ok"

    def test_unknown_op_rejected(self, client):
        with pytest.raises(ServiceError, match="unknown shard op"):
            client.call("shutdown")

    def test_connection_pool_reuses_sockets(self, client):
        client.call("ping")
        connection = client.checkout()
        client.checkin(connection)
        assert client.checkout() is connection
        client.checkin(connection)
        for _ in range(5):
            client.call("ping")
        # Sequential calls never needed a second connection.
        assert len(client._idle) == 1


class TestRetryDiscipline:
    def test_connect_phase_retries_then_raises(self):
        # A port nothing listens on: every attempt fails in the connect
        # phase, which is always retriable -- then the last error surfaces.
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        client = BinaryShardClient(
            "127.0.0.1", port, timeout=1.0, retries=2, retry_backoff=0.01
        )
        with pytest.raises(OSError):
            client.call("ingest", {"name": "age", "insert": [1.0]})
        assert client.transport_stats["connect_retries"] == 3

    def test_post_wire_failure_on_write_never_retries(self, server, client, shard):
        shard.create("age", "dc", memory_kb=0.5)
        # Poison the pooled connection: the next send/receive fails after
        # the frame may have reached the wire.
        connection = client.checkout()
        client.checkin(connection)
        connection._sock.close()
        with pytest.raises(ShardUnavailableError):
            shard.ingest("age", insert=[2.0])
        # No silent replay happened: the value was never applied.
        assert shard.stats("age")["total_count"] == pytest.approx(0.0)

    def test_post_wire_failure_on_read_retries_on_fresh_connection(
        self, server, client, shard
    ):
        shard.create("age", "dc", memory_kb=0.5)
        connection = client.checkout()
        client.checkin(connection)
        connection._sock.close()
        assert shard.names() == ["age"]  # retried transparently

    def test_idempotent_op_set_is_reads_only(self):
        assert "ingest" not in IDEMPOTENT_OPS
        assert "restore" not in IDEMPOTENT_OPS
        assert "create" not in IDEMPOTENT_OPS
        assert "drop" not in IDEMPOTENT_OPS
        assert {"names", "query", "stats", "snapshot", "health"} <= IDEMPOTENT_OPS

    def test_client_close_is_idempotent(self, client):
        client.call("ping")
        client.close()
        client.close()
        with pytest.raises(FrameError, match="closed"):
            client.checkout()


class TestPipelinedScatter:
    @pytest.fixture
    def fleet(self):
        stores = [HistogramStore() for _ in range(2)]
        servers = []
        shards = {}
        clients = []
        for index, store in enumerate(stores):
            shard_id = f"shard-{index}"
            server = BinaryShardServer(LocalShard(shard_id, store)).start()
            servers.append(server)
            host, port = server.address
            client = BinaryShardClient(host, port, retry_backoff=0.01)
            clients.append(client)
            shards[shard_id] = ProcessShard(shard_id, client)
        yield shards
        for client in clients:
            client.close()
        for server in servers:
            server.stop()
        for store in stores:
            store.close()

    def test_simple_call_is_pipelined(self, fleet):
        outcome = try_pipelined_scatter(fleet, lambda shard: shard.create("age", "dc"))
        assert outcome is not None
        assert set(outcome) == {"shard-0", "shard-1"}
        assert all(ok for ok, _, _ in outcome.values())
        names = try_pipelined_scatter(fleet, lambda shard: shard.names())
        assert names is not None
        assert [value for _, value, _ in names.values()] == [["age"], ["age"]]

    def test_per_shard_payloads_are_recorded(self, fleet):
        try_pipelined_scatter(fleet, lambda shard: shard.create("age", "dc"))
        payloads = {"shard-0": [1.0, 2.0], "shard-1": [3.0]}
        outcome = try_pipelined_scatter(
            fleet,
            lambda shard: shard.ingest("age", insert=payloads[shard.shard_id]),
        )
        assert outcome is not None
        counts = try_pipelined_scatter(fleet, lambda shard: shard.stats("age"))
        assert counts is not None
        totals = {sid: value["total_count"] for sid, (_, value, _) in counts.items()}
        assert totals == {"shard-0": pytest.approx(2.0), "shard-1": pytest.approx(1.0)}

    def test_application_error_is_an_outcome_not_a_raise(self, fleet):
        outcome = try_pipelined_scatter(fleet, lambda shard: shard.stats("missing"))
        assert outcome is not None
        for ok, value, _ in outcome.values():
            assert not ok
            assert isinstance(value, UnknownAttributeError)

    def test_non_process_shard_falls_back(self, fleet):
        mixed = dict(fleet)
        mixed["local"] = LocalShard("local")
        assert try_pipelined_scatter(mixed, lambda shard: shard.names()) is None

    def test_multi_call_closure_falls_back(self, fleet):
        def two_calls(shard):
            shard.names()
            return shard.health()

        assert try_pipelined_scatter(fleet, two_calls) is None

    def test_result_using_closure_falls_back(self, fleet):
        assert try_pipelined_scatter(fleet, lambda shard: len(shard.names())) is None

    def test_failing_closure_falls_back(self, fleet):
        lookup = {}

        def broken(shard):
            return shard.ingest("age", insert=lookup[shard.shard_id])  # KeyError

        assert try_pipelined_scatter(fleet, broken) is None

    def test_dead_shard_is_an_unavailable_outcome(self, fleet):
        try_pipelined_scatter(fleet, lambda shard: shard.create("age", "dc"))
        # Kill shard-1's server; its pooled connection and reconnects fail.
        client = fleet["shard-1"].client
        client.close()
        dead = BinaryShardClient(
            client.host, 1, timeout=0.5, retries=0, retry_backoff=0.01
        )
        fleet["shard-1"] = ProcessShard("shard-1", dead)
        outcome = try_pipelined_scatter(fleet, lambda shard: shard.names())
        assert outcome is not None
        ok0, value0, _ = outcome["shard-0"]
        ok1, value1, _ = outcome["shard-1"]
        assert ok0 and value0 == ["age"]
        assert not ok1 and isinstance(value1, ShardUnavailableError)
        dead.close()


class TestConcurrentClients:
    def test_parallel_calls_share_the_pool(self, server):
        host, port = server.address
        client = BinaryShardClient(host, port, pool_size=4, retry_backoff=0.01)
        shard = ProcessShard("shard-0", client)
        shard.create("age", "dc", memory_kb=0.5)
        errors = []

        def worker(base):
            try:
                for i in range(10):
                    shard.ingest("age", insert=[float(base * 100 + i)])
            except Exception as error:  # noqa: BLE001 - the assertion
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        assert shard.stats("age")["total_count"] == pytest.approx(40.0)
        client.close()
