"""Unit tests for the range-query workload generators."""

import pytest

from repro import DataDistribution
from repro.exceptions import ConfigurationError
from repro.workloads import (
    RangeQuery,
    data_distributed_range_queries,
    open_range_queries,
    uniform_range_queries,
)


class TestRangeQuery:
    def test_valid_query(self):
        query = RangeQuery(1.0, 5.0)
        assert query.as_tuple() == (1.0, 5.0)

    def test_inverted_query_rejected(self):
        with pytest.raises(ConfigurationError):
            RangeQuery(5.0, 1.0)


class TestUniformQueries:
    def test_count_and_bounds(self):
        queries = uniform_range_queries((0, 100), 50, seed=1)
        assert len(queries) == 50
        for query in queries:
            assert 0 <= query.low <= query.high <= 100

    def test_deterministic_per_seed(self):
        first = uniform_range_queries((0, 100), 10, seed=7)
        second = uniform_range_queries((0, 100), 10, seed=7)
        assert [q.as_tuple() for q in first] == [q.as_tuple() for q in second]

    def test_invalid_domain(self):
        with pytest.raises(ConfigurationError):
            uniform_range_queries((10, 10), 5)

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            uniform_range_queries((0, 10), 0)


class TestDataDistributedQueries:
    def test_endpoints_are_data_values(self):
        data = DataDistribution([1, 5, 5, 9, 20])
        queries = data_distributed_range_queries(data, 30, seed=2)
        values = {1.0, 5.0, 9.0, 20.0}
        for query in queries:
            assert query.low in values
            assert query.high in values
            assert query.low <= query.high

    def test_empty_data_rejected(self):
        with pytest.raises(ConfigurationError):
            data_distributed_range_queries(DataDistribution(), 5)


class TestOpenRangeQueries:
    def test_lower_bound_is_domain_low(self):
        queries = open_range_queries((10, 50), 20, seed=3)
        assert len(queries) == 20
        for query in queries:
            assert query.low == 10
            assert 10 <= query.high <= 50
