"""Unit tests for the experiment harness (settings, runner, reporting, figures)."""

import pytest

from repro import DADOHistogram, DataDistribution, ExperimentSettings, SweepResult
from repro.exceptions import ConfigurationError
from repro.experiments import (
    average_over_seeds,
    build_truth,
    checkpointed_ks,
    final_ks,
    format_sweep_table,
    replay,
    sweep_to_csv,
)
from repro.experiments import figures
from repro.workloads import insertions_then_random_deletions, random_insertions

#: Tiny settings so the figure smoke tests stay fast.
TINY = ExperimentSettings(scale=0.01, n_runs=1, memory_kb=0.5)


class TestExperimentSettings:
    def test_defaults(self):
        settings = ExperimentSettings()
        assert 0 < settings.scale <= 1
        assert settings.n_runs >= 1
        assert settings.seeds == list(range(settings.base_seed, settings.base_seed + settings.n_runs))

    def test_with_helpers(self):
        settings = ExperimentSettings().with_scale(0.5).with_runs(7)
        assert settings.scale == 0.5
        assert settings.n_runs == 7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentSettings(scale=0.0)
        with pytest.raises(ConfigurationError):
            ExperimentSettings(scale=1.5)
        with pytest.raises(ConfigurationError):
            ExperimentSettings(n_runs=0)


class TestSweepResult:
    def test_series_length_validation(self):
        with pytest.raises(ConfigurationError):
            SweepResult("x", "p", [1, 2, 3], {"A": [0.1, 0.2]})

    def test_row_and_best(self):
        result = SweepResult("x", "p", [1, 2], {"A": [0.1, 0.3], "B": [0.2, 0.1]})
        assert result.row(0) == {"A": 0.1, "B": 0.2}
        assert result.best_algorithm(0) == "A"
        assert result.best_algorithm(1) == "B"
        assert result.mean("A") == pytest.approx(0.2)
        assert result.algorithms == ["A", "B"]


class TestRunner:
    def test_replay_and_truth(self, uniform_values):
        stream = random_insertions(uniform_values, seed=1)
        histogram = DADOHistogram(16)
        truth = DataDistribution()
        replay(histogram, stream, truth=truth)
        assert truth.total_count == len(uniform_values)
        assert histogram.total_count == pytest.approx(len(uniform_values), rel=1e-9)

    def test_build_truth_accounts_for_deletions(self, uniform_values):
        stream = insertions_then_random_deletions(uniform_values, delete_fraction=0.5, seed=2)
        truth = build_truth(stream)
        assert truth.total_count == len(uniform_values) - stream.delete_count

    def test_final_ks_bounded(self, uniform_values):
        stream = random_insertions(uniform_values, seed=3)
        assert 0.0 <= final_ks(DADOHistogram(16), stream) <= 1.0

    def test_checkpointed_ks_is_ordered(self, uniform_values):
        stream = random_insertions(uniform_values, seed=4)
        checkpoints = checkpointed_ks(DADOHistogram(16), stream, [0.25, 0.5, 1.0])
        assert [fraction for fraction, _ in checkpoints] == [0.25, 0.5, 1.0]
        assert all(0.0 <= ks <= 1.0 for _, ks in checkpoints)

    def test_checkpointed_ks_rejects_bad_fractions(self, uniform_values):
        stream = random_insertions(uniform_values, seed=5)
        with pytest.raises(ValueError):
            checkpointed_ks(DADOHistogram(16), stream, [0.0, 0.5])

    def test_average_over_seeds(self):
        assert average_over_seeds(lambda seed: float(seed), [1, 2, 3]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            average_over_seeds(lambda seed: 0.0, [])


class TestReporting:
    def test_format_table_contains_all_series(self):
        result = SweepResult("figX", "S", [0, 1], {"DADO": [0.1, 0.2], "DC": [0.3, 0.4]})
        table = format_sweep_table(result)
        assert "figX" in table
        assert "DADO" in table and "DC" in table
        assert "0.10000" in table

    def test_csv_round_trip(self, tmp_path):
        result = SweepResult("figX", "S", [0, 1], {"DADO": [0.1, 0.2]})
        path = tmp_path / "out.csv"
        text = sweep_to_csv(result, path=str(path))
        assert path.read_text() == text
        assert text.splitlines()[0] == "S,DADO"
        assert len(text.splitlines()) == 3


class TestFigureSmoke:
    """Tiny-scale smoke runs of every figure experiment."""

    def test_fig05_center_skew(self):
        result = figures.fig05_center_skew(TINY, x_values=(0.0, 2.0))
        assert set(result.series) == {"DC", "DADO", "AC", "DVO"}
        assert len(result.x_values) == 2
        assert all(0 <= v <= 1 for series in result.series.values() for v in series)

    def test_fig08_memory(self):
        result = figures.fig08_memory(TINY, x_values=(0.5, 1.0))
        assert len(result.series["DADO"]) == 2

    def test_fig09_static(self):
        result = figures.fig09_static_center_skew(TINY, x_values=(1.0,))
        assert set(result.series) == {"SADO", "SVO", "SC", "DADO", "SSBM"}

    def test_fig13_times(self):
        result = figures.fig13_construction_time(TINY, x_values=(0.1, 0.2))
        assert result.y_label.startswith("execution time")
        assert all(v >= 0 for series in result.series.values() for v in series)

    def test_fig14_disk_space(self):
        result = figures.fig14_ac_disk_space(TINY, x_values=(1.0,))
        assert {"AC20X", "AC40X", "AC60X", "DADO", "SC"} <= set(result.series)

    def test_fig15_sorted(self):
        result = figures.fig15_sorted_insertions(TINY, x_values=(1.0,))
        assert set(result.series) == {"DADO", "AC20X", "DC", "DVO"}

    def test_fig16_fractions(self):
        result = figures.fig16_precision_vs_inserted_fraction(TINY, fractions=(0.5, 1.0))
        assert set(result.series) == {"DADO", "AC", "SC"}
        assert len(result.x_values) == 2

    def test_fig17_and_18_deletions(self):
        for function in (figures.fig17_random_deletions, figures.fig18_deletions_after_sorted_inserts):
            result = function(TINY, fractions=(0.0, 0.5))
            assert set(result.series) == {"DADO", "AC"}

    def test_fig19_mailorder(self):
        result = figures.fig19_mail_order(TINY, x_values=(0.5,))
        assert set(result.series) == {"AC", "DC", "DADO"}

    def test_fig20_to_23_distributed(self):
        for function in (
            figures.fig20_distributed_memory,
            figures.fig21_distributed_intrasite_skew,
            figures.fig23_distributed_site_size_skew,
        ):
            result = function(TINY, x_values=(1.0,))
            assert set(result.series) == {"histogram + union", "union + histogram"}
        result = figures.fig22_distributed_site_count(TINY, x_values=(2,))
        assert len(result.series["histogram + union"]) == 1

    def test_ablations(self):
        sub_buckets = figures.ablation_sub_buckets(TINY, x_values=(2, 3))
        assert len(sub_buckets.series["DADO"]) == 2
        alpha = figures.ablation_alpha_min(TINY, x_values=(1e-2, 1e-8))
        assert len(alpha.series["DC"]) == 2
        threshold = figures.ablation_repartition_threshold(TINY, x_values=(0.0, -5.0))
        assert len(threshold.series["DADO"]) == 2
