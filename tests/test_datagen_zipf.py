"""Unit tests for the Zipf-law utilities."""

import numpy as np
import pytest

from repro.datagen.zipf import sample_zipf, zipf_counts, zipf_gaps, zipf_weights
from repro.exceptions import ConfigurationError


class TestZipfWeights:
    def test_weights_sum_to_one(self):
        for skew in (0.0, 0.5, 1.0, 3.0):
            assert zipf_weights(25, skew).sum() == pytest.approx(1.0)

    def test_zero_skew_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        np.testing.assert_allclose(weights, np.full(10, 0.1))

    def test_weights_are_decreasing_for_positive_skew(self):
        weights = zipf_weights(20, 1.5)
        assert np.all(np.diff(weights) < 0)

    def test_higher_skew_concentrates_more_mass(self):
        mild = zipf_weights(50, 0.5)
        steep = zipf_weights(50, 2.5)
        assert steep[0] > mild[0]

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            zipf_weights(0, 1.0)
        with pytest.raises(ConfigurationError):
            zipf_weights(5, -0.1)


class TestZipfCounts:
    def test_counts_sum_exactly_to_total(self):
        for total in (0, 1, 97, 10_000):
            counts = zipf_counts(total, 13, 1.0)
            assert counts.sum() == total
            assert np.all(counts >= 0)

    def test_counts_follow_weight_order(self):
        counts = zipf_counts(5000, 10, 1.2)
        assert counts[0] == counts.max()

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            zipf_counts(-1, 5, 1.0)


class TestSampleZipf:
    def test_sample_shape_and_range(self, rng):
        samples = sample_zipf(rng, 500, 8, 1.0)
        assert samples.shape == (500,)
        assert samples.min() >= 0
        assert samples.max() < 8

    def test_zero_samples(self, rng):
        assert sample_zipf(rng, 0, 8, 1.0).shape == (0,)

    def test_negative_samples_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_zipf(rng, -1, 8, 1.0)

    def test_skew_shifts_mass_to_low_ranks(self, rng):
        samples = sample_zipf(rng, 5000, 10, 2.0)
        counts = np.bincount(samples, minlength=10)
        assert counts[0] > counts[-1]


class TestZipfGaps:
    def test_gaps_cover_the_span(self, rng):
        gaps = zipf_gaps(rng, 12, 1.0, 100.0)
        assert gaps.sum() == pytest.approx(100.0)
        assert np.all(gaps > 0)

    def test_unshuffled_gaps_are_sorted(self):
        gaps = zipf_gaps(None, 6, 1.0, 60.0, shuffle=False)
        assert np.all(np.diff(gaps) < 0)

    def test_shuffle_requires_rng(self):
        with pytest.raises(ValueError):
            zipf_gaps(None, 6, 1.0, 60.0, shuffle=True)

    def test_invalid_span(self, rng):
        with pytest.raises(ValueError):
            zipf_gaps(rng, 6, 1.0, 0.0)
